"""Tests for semantic operation grouping (Section 6.5 extension)."""

import pytest

from repro.core import (
    LSConfig,
    LucidScript,
    OperationGroups,
    TableJaccardIntent,
    group_operations,
)
from repro.core.transformations import ADD, enumerate_transformations
from repro.lang import ONEGRAM, CorpusVocabulary, parse_script


@pytest.fixture()
def vocab(diabetes_corpus):
    return CorpusVocabulary.from_scripts(diabetes_corpus)


class TestGroupOperations:
    def test_every_atom_assigned(self, vocab):
        groups = group_operations(vocab, 4)
        assert set(groups.group_of) == set(vocab.onegram_counts)

    def test_representative_is_member(self, vocab):
        groups = group_operations(vocab, 4)
        for group, representative in groups.representatives.items():
            assert groups.group_of[representative] == group

    def test_representative_is_most_frequent_member(self, vocab):
        groups = group_operations(vocab, 3)
        for group in groups.representatives:
            members = groups.members(group)
            best = max(members, key=lambda sig: vocab.onegram_counts[sig])
            assert (
                vocab.onegram_counts[groups.representatives[group]]
                == vocab.onegram_counts[best]
            )

    def test_n_groups_bounded(self, vocab):
        groups = group_operations(vocab, 1000)
        assert groups.n_groups <= len(vocab.onegram_counts)

    def test_invalid_n_groups(self, vocab):
        with pytest.raises(ValueError):
            group_operations(vocab, 0)

    def test_deterministic(self, vocab):
        a = group_operations(vocab, 4, random_state=1)
        b = group_operations(vocab, 4, random_state=1)
        assert a.group_of == b.group_of

    def test_unknown_signature_has_no_representative(self, vocab):
        groups = group_operations(vocab, 4)
        assert groups.representative_for("bogus(x)") is None
        assert not groups.is_representative("bogus(x)")


class TestGroupedEnumeration:
    def test_reduces_onegram_candidates(self, vocab, alex_script):
        statements = parse_script(alex_script).statements
        full = enumerate_transformations(statements, vocab)
        grouped = enumerate_transformations(
            statements, vocab, operation_groups=group_operations(vocab, 2)
        )
        count = lambda ts: sum(
            1 for t in ts if t.kind == ADD and t.gram == ONEGRAM
        )
        assert count(grouped) <= count(full)

    def test_grouped_adds_are_representatives(self, vocab, alex_script):
        statements = parse_script(alex_script).statements
        groups = group_operations(vocab, 2)
        for t in enumerate_transformations(
            statements, vocab, operation_groups=groups
        ):
            if t.kind == ADD and t.gram == ONEGRAM:
                assert groups.is_representative(t.signature)


class TestGroupedSearch:
    def test_search_with_grouping_still_improves(
        self, diabetes_corpus, diabetes_dir, alex_script
    ):
        system = LucidScript(
            diabetes_corpus,
            data_dir=diabetes_dir,
            intent=TableJaccardIntent(tau=0.5),
            config=LSConfig(
                seq=8, beam_size=2, sample_rows=150, operation_groups=4
            ),
        )
        result = system.standardize(alex_script)
        assert result.improvement > 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LSConfig(operation_groups=0)
