"""Tests for the beam search (Algorithms 1-3), diversity clustering, and
the Table 2 parameter defaults."""

import numpy as np
import pytest

from repro.core import (
    BeamSearch,
    LSConfig,
    Transformation,
    cluster_transformations,
    kmeans,
    recommend_parameters,
    transformation_features,
)
from repro.core.entropy import RelativeEntropyScorer
from repro.core.transformations import ADD, DELETE
from repro.lang import NGRAM, CorpusVocabulary, parse_script


@pytest.fixture()
def vocab(diabetes_corpus):
    return CorpusVocabulary.from_scripts(diabetes_corpus)


@pytest.fixture()
def scorer(vocab):
    return RelativeEntropyScorer(vocab)


def make_search(vocab, scorer, diabetes_dir, **config_kwargs):
    defaults = dict(seq=6, beam_size=2, sample_rows=100)
    defaults.update(config_kwargs)
    return BeamSearch(vocab, scorer, LSConfig(**defaults), data_dir=diabetes_dir)


class TestGetSteps:
    def test_ranked_ascending(self, vocab, scorer, diabetes_dir, alex_script):
        search = make_search(vocab, scorer, diabetes_dir)
        statements = parse_script(alex_script).statements
        from repro.core.beam import Candidate

        candidate = Candidate(
            statements=tuple(statements), applied=(), frontier=0,
            score=scorer.score_statements(statements),
        )
        ranked = search.get_steps(candidate)
        scores = [s for _, s in ranked]
        assert scores == sorted(scores)
        assert len(ranked) <= search.config.max_step_candidates

    def test_best_step_improves_score(self, vocab, scorer, diabetes_dir, alex_script):
        search = make_search(vocab, scorer, diabetes_dir)
        statements = parse_script(alex_script).statements
        from repro.core.beam import Candidate

        candidate = Candidate(
            statements=tuple(statements), applied=(), frontier=0,
            score=scorer.score_statements(statements),
        )
        ranked = search.get_steps(candidate)
        assert ranked[0][1] < candidate.score


class TestSearch:
    def test_improves_alex_script(self, vocab, scorer, diabetes_dir, alex_script):
        search = make_search(vocab, scorer, diabetes_dir)
        statements = parse_script(alex_script).statements
        results = search.search(statements)
        assert results[0].score <= scorer.score_statements(statements)

    def test_results_sorted_by_score(self, vocab, scorer, diabetes_dir, alex_script):
        search = make_search(vocab, scorer, diabetes_dir)
        results = search.search(parse_script(alex_script).statements)
        scores = [c.score for c in results]
        assert scores == sorted(scores)

    def test_original_always_in_results(self, vocab, scorer, diabetes_dir, alex_script):
        search = make_search(vocab, scorer, diabetes_dir)
        statements = parse_script(alex_script).statements
        original = "\n".join(s.source for s in statements)
        results = search.search(statements)
        assert any(c.source() == original for c in results)

    def test_seq_bounds_transformation_count(self, vocab, scorer, diabetes_dir, alex_script):
        search = make_search(vocab, scorer, diabetes_dir, seq=3)
        for candidate in search.search(parse_script(alex_script).statements):
            assert candidate.n_transformations <= 3

    def test_early_check_keeps_beams_executable(
        self, vocab, scorer, diabetes_dir, alex_script
    ):
        from repro.sandbox import check_executes

        search = make_search(vocab, scorer, diabetes_dir, early_check=True)
        for candidate in search.search(parse_script(alex_script).statements):
            assert check_executes(candidate.source(), data_dir=diabetes_dir)

    def test_late_check_skips_execution(self, vocab, scorer, diabetes_dir, alex_script):
        search = make_search(vocab, scorer, diabetes_dir, early_check=False)
        search.search(parse_script(alex_script).statements)
        assert search.stats.n_exec_checks == 0

    def test_exec_cache_dedupes(self, vocab, scorer, diabetes_dir, alex_script):
        search = make_search(vocab, scorer, diabetes_dir)
        search.search(parse_script(alex_script).statements)
        assert search.stats.n_exec_checks == len(search._exec_cache)

    def test_larger_beam_never_worse(self, vocab, scorer, diabetes_dir, alex_script):
        statements = parse_script(alex_script).statements
        small = make_search(vocab, scorer, diabetes_dir, beam_size=1, diversity=False)
        big = make_search(vocab, scorer, diabetes_dir, beam_size=3, diversity=False)
        assert big.search(statements)[0].score <= small.search(statements)[0].score + 1e-9

    def test_stats_timings_populated(self, vocab, scorer, diabetes_dir, alex_script):
        search = make_search(vocab, scorer, diabetes_dir)
        search.search(parse_script(alex_script).statements)
        assert search.stats.get_steps_s > 0
        assert search.stats.n_iterations >= 1
        breakdown = search.stats.breakdown()
        assert set(breakdown) >= {
            "GetSteps", "GetTopKBeams", "CheckIfExecutes", "VerifyConstraints"
        }
        # the execution-engine counters ride along in the same breakdown
        assert {"PrefixCacheHitRate", "ExecCacheHitRate", "ExecBatches"} <= set(
            breakdown
        )

    def test_adds_respect_monotone_frontier(
        self, vocab, scorer, diabetes_dir, alex_script
    ):
        search = make_search(vocab, scorer, diabetes_dir, seq=5)
        for candidate in search.search(parse_script(alex_script).statements):
            frontier = 0
            for t in candidate.applied:
                if t.kind == ADD:
                    assert t.position >= frontier
                    frontier = t.position + 1
                elif t.position < frontier:
                    frontier -= 1

    def test_no_add_delete_oscillation(self, vocab, scorer, diabetes_dir, alex_script):
        search = make_search(vocab, scorer, diabetes_dir, seq=8)
        for candidate in search.search(parse_script(alex_script).statements):
            added = [t.signature for t in candidate.applied if t.kind == ADD]
            deleted = [t.signature for t in candidate.applied if t.kind == DELETE]
            assert not set(added) & set(deleted)


class TestKMeans:
    def test_separates_two_blobs(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 0.1, (20, 2)), rng.normal(5, 0.1, (20, 2))])
        labels = kmeans(X, 2, random_state=0)
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1
        assert labels[0] != labels[-1]

    def test_k_greater_than_n_clamped(self):
        labels = kmeans(np.zeros((3, 2)), 10)
        assert len(labels) == 3

    def test_empty_input(self):
        assert len(kmeans(np.zeros((0, 2)), 3)) == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), 0)

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        X = rng.normal(0, 1, (30, 4))
        assert np.array_equal(kmeans(X, 3, random_state=5), kmeans(X, 3, random_state=5))


def _t(kind, sig, pos=2):
    source = sig if kind == ADD else None
    return Transformation(
        kind=kind, gram=NGRAM, signature=sig, position=pos, statement_source=source
    )


class TestDiversity:
    def test_features_shape_and_norm(self):
        ts = [_t(ADD, "df = df.fillna(df.mean())"), _t(DELETE, "df = df.dropna()")]
        X = transformation_features(ts, dim=16)
        assert X.shape == (2, 16)
        assert np.allclose(np.linalg.norm(X, axis=1), 1.0)

    def test_similar_transformations_have_close_features(self):
        a = _t(ADD, "df = df.fillna(df.mean())")
        b = _t(ADD, "df = df.fillna(df.median())")
        c = _t(DELETE, "df = df.sort_values('Age')")
        X = transformation_features([a, b, c])
        sim_ab = X[0] @ X[1]
        sim_ac = X[0] @ X[2]
        assert sim_ab > sim_ac

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            transformation_features([_t(DELETE, "x = 1")], dim=1)

    def test_cluster_preserves_all_members(self):
        ts = [_t(ADD, f"df = df.step{i}()") for i in range(9)]
        clusters = cluster_transformations(ts, 3)
        flat = [t for cluster in clusters for t in cluster]
        assert sorted(t.signature for t in flat) == sorted(t.signature for t in ts)

    def test_single_cluster_for_small_input(self):
        ts = [_t(ADD, "df = df.a()"), _t(ADD, "df = df.b()")]
        assert len(cluster_transformations(ts, 5)) == 1

    def test_empty_input(self):
        assert cluster_transformations([], 3) == []

    def test_first_cluster_contains_top_ranked(self):
        ts = [_t(ADD, f"df = df.step{i}()") for i in range(12)]
        clusters = cluster_transformations(ts, 3)
        assert ts[0] in clusters[0]


class TestConfig:
    def test_defaults_match_paper(self):
        config = LSConfig()
        assert config.seq == 16
        assert config.beam_size == 3
        assert config.diversity
        assert config.early_check

    def test_validation(self):
        with pytest.raises(ValueError):
            LSConfig(seq=0)
        with pytest.raises(ValueError):
            LSConfig(beam_size=0)
        with pytest.raises(ValueError):
            LSConfig(diversity_clusters=0)
        with pytest.raises(ValueError):
            LSConfig(max_step_candidates=0)

    def test_clusters_default_to_beam_size(self):
        assert LSConfig(beam_size=4).clusters == 4
        assert LSConfig(beam_size=4, diversity_clusters=2).clusters == 2

    @pytest.mark.parametrize(
        "n_scripts,uniq_edges,seq,k",
        [
            (11, 301, 16, 3),
            (11, 300, 16, 1),
            (10, 301, 8, 3),
            (10, 300, 8, 1),
            (62, 748, 16, 3),   # Titanic row of Table 3
            (24, 193, 16, 1),   # NLP row of Table 3
        ],
    )
    def test_table2_parameterization(self, n_scripts, uniq_edges, seq, k):
        config = recommend_parameters(n_scripts, uniq_edges)
        assert config.seq == seq
        assert config.beam_size == k

    def test_negative_stats_rejected(self):
        with pytest.raises(ValueError):
            recommend_parameters(-1, 10)
