"""Tests for the incremental executor, batched checks, and the LRU caches."""

import os

import pytest

from repro._lru import LRUCache
from repro.minipandas import DataFrame
from repro.sandbox import (
    IncrementalExecutor,
    check_executes,
    check_executes_batch,
    run_script,
)
from repro.sandbox import runner as runner_module


PREFIX = (
    "import pandas as pd\n"
    "df = pd.read_csv('diabetes.csv')\n"
    "df = df.fillna(df.mean())\n"
    "df = df[df['SkinThickness'] < 80]"
)

SUFFIXES = [
    "df = df.dropna()",
    "df = pd.get_dummies(df)",
    "df = df.drop('Glucose', axis=1)",
    "df = df.drop('NoSuchColumn', axis=1)",  # fails on its last line
    "df = df[df['Age'] > 30]",
    "df = df.reset_index()",
]


def _result_signature(result):
    sig = (result.ok, result.error_type, result.error_line)
    if result.ok and result.output is not None:
        sig += (
            tuple(result.output.columns),
            result.output.index.tolist(),
            tuple(tuple(v) for v in result.output.to_dict().values()),
        )
    return sig


class TestLRUCache:
    def test_capacity_bound(self):
        cache = LRUCache(2)
        cache["a"], cache["b"], cache["c"] = 1, 2, 3
        assert len(cache) == 2
        assert "a" not in cache
        assert cache.evictions == 1

    def test_hit_refreshes_recency(self):
        cache = LRUCache(2)
        cache["a"], cache["b"] = 1, 2
        assert cache.get("a") == 1  # refresh: "b" is now least recent
        cache["c"] = 3
        assert "a" in cache and "b" not in cache

    def test_hit_rate_accounting(self):
        cache = LRUCache(4)
        cache["a"] = 1
        cache.get("a")
        cache.get("missing")
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_peek_does_not_touch_counters(self):
        cache = LRUCache(4)
        cache["a"] = 1
        cache.peek("a")
        cache.peek("missing")
        assert cache.hits == 0 and cache.misses == 0

    def test_zero_capacity_disables_storage(self):
        cache = LRUCache(0)
        cache["a"] = 1
        assert "a" not in cache and len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)


class TestCsvCacheLRU:
    """The parsed-CSV cache is a true LRU keyed on (identity, sample_rows)."""

    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        runner_module._CSV_CACHE.clear()
        yield
        runner_module._CSV_CACHE.clear()

    def test_sampled_and_full_reads_cached_separately(self, diabetes_dir):
        path = os.path.join(diabetes_dir, "diabetes.csv")
        full = runner_module._load_table(path, None)
        sampled = runner_module._load_table(path, 50)
        assert len(full) > 50 and len(sampled) == 50
        # both variants live in the cache under distinct keys
        assert len(runner_module._CSV_CACHE) == 2
        assert runner_module._load_table(path, 50) is sampled
        assert runner_module._load_table(path, None) is full

    def test_sampled_read_is_deterministic_across_evictions(self, diabetes_dir):
        path = os.path.join(diabetes_dir, "diabetes.csv")
        first = runner_module._load_table(path, 50).index.tolist()
        runner_module._CSV_CACHE.clear()
        assert runner_module._load_table(path, 50).index.tolist() == first

    def test_hot_file_survives_cache_pressure(self, tmp_path):
        frame = DataFrame({"a": list(range(5))})
        hot = str(tmp_path / "hot.csv")
        frame.to_csv(hot)
        cold_paths = []
        for i in range(runner_module._CSV_CACHE.capacity - 1):
            p = str(tmp_path / f"cold{i}.csv")
            frame.to_csv(p)
            cold_paths.append(p)
        hot_frame = runner_module._load_table(hot, None)
        for p in cold_paths:
            runner_module._load_table(p, None)
            # a FIFO would evict `hot` midway; LRU keeps it because we touch it
            assert runner_module._load_table(hot, None) is hot_frame

    def test_kwargs_bypass_cache(self, diabetes_dir):
        path = os.path.join(diabetes_dir, "diabetes.csv")
        runner_module._load_table(path, None, nrows=10)
        assert len(runner_module._CSV_CACHE) == 0


class TestIncrementalExecutor:
    def test_matches_cold_run_on_shared_prefix_wave(self, diabetes_dir):
        sources = [f"{PREFIX}\n{suffix}" for suffix in SUFFIXES]
        cold = [run_script(s, data_dir=diabetes_dir, sample_rows=100) for s in sources]
        executor = IncrementalExecutor(data_dir=diabetes_dir, sample_rows=100)
        incremental = [executor.run_script(s) for s in sources]
        for c, i in zip(cold, incremental):
            assert _result_signature(c) == _result_signature(i)

    def test_prefix_reuse_reported(self, diabetes_dir):
        executor = IncrementalExecutor(data_dir=diabetes_dir, sample_rows=100)
        for suffix in SUFFIXES:
            executor.run_script(f"{PREFIX}\n{suffix}")
        assert executor.stats.prefix_hits == len(SUFFIXES) - 1
        assert executor.stats.prefix_misses == 1
        # every resumed run re-executed only its one-line suffix
        assert executor.stats.mean_resume_depth == 4.0

    def test_identical_script_is_a_full_prefix_hit(self, diabetes_dir):
        executor = IncrementalExecutor(data_dir=diabetes_dir, sample_rows=100)
        first = executor.run_script(PREFIX)
        executed = executor.stats.executed_statements
        second = executor.run_script(PREFIX)
        assert executor.stats.executed_statements == executed  # zero new work
        assert _result_signature(first) == _result_signature(second)

    def test_error_line_matches_cold_run(self, diabetes_dir):
        bad = PREFIX + "\ndf = df.dropna()\ndf = df.drop('Nope', axis=1)"
        executor = IncrementalExecutor(data_dir=diabetes_dir, sample_rows=100)
        executor.run_script(PREFIX + "\ndf = df.dropna()")  # warm the prefix
        resumed = executor.run_script(bad)
        cold = run_script(bad, data_dir=diabetes_dir, sample_rows=100)
        assert not resumed.ok and not cold.ok
        assert resumed.error_line == cold.error_line == 6
        assert resumed.error_type == cold.error_type == "KeyError"

    def test_outputs_are_independent_copies(self, diabetes_dir):
        executor = IncrementalExecutor(data_dir=diabetes_dir, sample_rows=100)
        first = executor.run_script(PREFIX)
        first.output["Mutant"] = 1.0
        second = executor.run_script(PREFIX)
        assert "Mutant" not in second.output.columns

    def test_aliasing_preserved_across_snapshots(self, diabetes_dir):
        source = (
            "import pandas as pd\n"
            "df = pd.read_csv('diabetes.csv')\n"
            "alias = df\n"
            "df.loc[:, 'Glucose'] = 0.0\n"
            "df = alias"
        )
        executor = IncrementalExecutor(data_dir=diabetes_dir, sample_rows=50)
        executor.run_script(source[: source.rfind("\n")])  # snapshot the prefix
        result = executor.run_script(source)
        assert result.ok
        assert set(result.output["Glucose"].tolist()) == {0.0}

    def test_randomness_bypasses_snapshots(self, diabetes_dir):
        source = (
            "import random\n"
            "import pandas as pd\n"
            "df = pd.read_csv('diabetes.csv')\n"
            "x = random.random()"
        )
        executor = IncrementalExecutor(data_dir=diabetes_dir, sample_rows=50)
        result = executor.run_script(source)
        assert result.ok
        assert executor.stats.cold_runs == 1
        assert executor.snapshot_count() == 0

    def test_random_state_kwarg_does_not_bypass(self, diabetes_dir):
        source = (
            "import pandas as pd\n"
            "df = pd.read_csv('diabetes.csv')\n"
            "df = df.sample(n=20, random_state=0)"
        )
        executor = IncrementalExecutor(data_dir=diabetes_dir, sample_rows=50)
        assert executor.run_script(source).ok
        assert executor.stats.cold_runs == 0
        assert executor.snapshot_count() > 0

    def test_extra_globals_bypass_snapshots(self, diabetes_dir):
        executor = IncrementalExecutor(data_dir=diabetes_dir, sample_rows=50)
        result = executor.run_script("y = injected + 1", extra_globals={"injected": 1})
        assert result.namespace["y"] == 2
        assert executor.stats.cold_runs == 1

    def test_snapshot_budget_bounds_store(self, diabetes_dir):
        executor = IncrementalExecutor(
            data_dir=diabetes_dir, sample_rows=50, snapshot_budget=3
        )
        for suffix in SUFFIXES:
            executor.run_script(f"{PREFIX}\n{suffix}")
        assert executor.snapshot_count() <= 3

    def test_zero_budget_runs_cold(self, diabetes_dir):
        executor = IncrementalExecutor(
            data_dir=diabetes_dir, sample_rows=50, snapshot_budget=0
        )
        assert executor.run_script(PREFIX).ok
        assert executor.stats.cold_runs == 1

    def test_data_file_change_invalidates_snapshots(self, tmp_path):
        data_dir = str(tmp_path)
        DataFrame({"a": list(range(50))}).to_csv(str(tmp_path / "diabetes.csv"))
        source = (
            "import pandas as pd\n"
            "df = pd.read_csv('diabetes.csv')\n"
            "df = df.dropna()"
        )
        executor = IncrementalExecutor(data_dir=data_dir)
        assert len(executor.run_script(source).output) == 50
        DataFrame({"a": [1, 2]}).to_csv(str(tmp_path / "diabetes.csv"))
        os.utime(str(tmp_path / "diabetes.csv"), (1, 1))  # distinct mtime
        # the rewrite must not be served from a stale prefix snapshot
        assert len(executor.run_script(source).output) == 2

    def test_restore_mismatch_falls_back_to_cold_run(self, diabetes_dir, monkeypatch):
        executor = IncrementalExecutor(data_dir=diabetes_dir, sample_rows=50)
        executor.run_script(PREFIX)

        def corrupt_thaw(frozen):
            namespace = original_thaw(frozen)
            namespace.pop("df", None)  # simulate a broken restore
            return namespace

        original_thaw = executor._thaw
        monkeypatch.setattr(executor, "_thaw", corrupt_thaw)
        result = executor.run_script(PREFIX + "\ndf = df.dropna()")
        assert result.ok  # the escape hatch re-ran the script cold
        assert executor.stats.fallbacks == 1

    def test_verify_mode_agrees_with_cold(self, diabetes_dir):
        executor = IncrementalExecutor(
            data_dir=diabetes_dir, sample_rows=100, verify=True
        )
        for suffix in SUFFIXES:
            executor.run_script(f"{PREFIX}\n{suffix}")
        assert executor.stats.fallbacks == 0

    def test_check_executes_parity(self, diabetes_dir):
        executor = IncrementalExecutor(data_dir=diabetes_dir, sample_rows=100)
        for suffix in SUFFIXES:
            source = f"{PREFIX}\n{suffix}"
            assert executor.check_executes(source) == check_executes(
                source, data_dir=diabetes_dir, sample_rows=100
            )

    def test_syntax_error_reported(self, diabetes_dir):
        executor = IncrementalExecutor(data_dir=diabetes_dir)
        result = executor.run_script("x ===")
        assert not result.ok and result.error_type == "SyntaxError"


class TestCheckExecutesBatch:
    def test_serial_matches_single_checks(self, diabetes_dir):
        sources = [f"{PREFIX}\n{suffix}" for suffix in SUFFIXES]
        expected = [check_executes(s, data_dir=diabetes_dir) for s in sources]
        assert check_executes_batch(sources, data_dir=diabetes_dir, workers=1) == expected

    def test_pool_matches_serial(self, diabetes_dir):
        sources = [f"{PREFIX}\n{suffix}" for suffix in SUFFIXES]
        serial = check_executes_batch(sources, data_dir=diabetes_dir, workers=1)
        pooled = check_executes_batch(sources, data_dir=diabetes_dir, workers=2)
        assert pooled == serial

    def test_empty_and_singleton_batches(self, diabetes_dir):
        assert check_executes_batch([], data_dir=diabetes_dir, workers=4) == []
        assert check_executes_batch(
            [PREFIX], data_dir=diabetes_dir, workers=4
        ) == [True]
