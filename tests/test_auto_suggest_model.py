"""Tests for the learned Auto-Suggest next-operator model."""

import numpy as np
import pytest

from repro.baselines import AutoSuggest, NextOperatorModel, generate_training_tables
from repro.baselines.auto_suggest_model import (
    OPERATOR_CLASSES,
    _attribute_per_row_table,
    _key_value_log_table,
    _relational_table,
    _year_matrix_table,
    default_model,
)


@pytest.fixture(scope="module")
def model():
    return default_model()


class TestTrainingData:
    def test_balanced_classes(self):
        examples = generate_training_tables(n_per_class=5, seed=0)
        labels = [label for _, label in examples]
        for cls in OPERATOR_CLASSES:
            assert labels.count(cls) == 5

    def test_deterministic(self):
        a = generate_training_tables(n_per_class=3, seed=1)
        b = generate_training_tables(n_per_class=3, seed=1)
        assert all(
            x[0].shape == y[0].shape and x[1] == y[1] for x, y in zip(a, b)
        )

    def test_generators_have_expected_shapes(self):
        rng = np.random.default_rng(0)
        assert _year_matrix_table(rng).shape[1] > 10
        attr = _attribute_per_row_table(rng)
        assert attr.shape[1] > attr.shape[0]
        assert _key_value_log_table(rng).shape[1] == 3
        rel = _relational_table(rng)
        assert rel.shape[0] > rel.shape[1]


class TestModel:
    def test_untrained_predict_raises(self):
        with pytest.raises(RuntimeError):
            NextOperatorModel().predict_proba(_relational_table(np.random.default_rng(0)))

    def test_empty_training_raises(self):
        with pytest.raises(ValueError):
            NextOperatorModel().fit([])

    def test_holdout_accuracy(self, model):
        holdout = generate_training_tables(n_per_class=10, seed=99)
        hits = sum(
            (model.predict(table) or "none") == label for table, label in holdout
        )
        assert hits / len(holdout) >= 0.8

    def test_relational_predicts_none(self, model):
        table = _relational_table(np.random.default_rng(5))
        assert model.predict(table) is None

    def test_year_matrix_predicts_melt(self, model):
        table = _year_matrix_table(np.random.default_rng(5))
        assert model.predict(table) == "melt"

    def test_attribute_rows_predict_transpose(self, model):
        table = _attribute_per_row_table(np.random.default_rng(5))
        assert model.predict(table) == "transpose"

    def test_key_value_log_predicts_pivot(self, model):
        table = _key_value_log_table(np.random.default_rng(5))
        assert model.predict(table) == "pivot"

    def test_proba_normalized(self, model):
        table = _relational_table(np.random.default_rng(1))
        proba = model.predict_proba(table)
        assert set(proba) == set(OPERATOR_CLASSES)
        assert sum(proba.values()) == pytest.approx(1.0)


class TestLearnedBaseline:
    def test_learned_variant_unchanged_on_competition(self, diabetes_dir, alex_script):
        baseline = AutoSuggest(data_dir=diabetes_dir, learned=True)
        assert baseline.rewrite(alex_script, []) == alex_script
