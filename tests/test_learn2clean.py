"""Tests for the Learn2Clean-style RL pipeline optimizer."""

import numpy as np
import pytest

from repro.baselines import Learn2Clean, Learn2CleanAgent, QualityState
from repro.minipandas import NA, DataFrame
from repro.ml import evaluate_downstream
from repro.sandbox import run_script


def make_dirty_frame(n=300, seed=0):
    """A classification table with missing values, outliers, duplicates,
    and an unencoded categorical — plenty for a cleaner to do."""
    rng = np.random.default_rng(seed)
    x1 = rng.normal(0, 1, n)
    x2 = rng.normal(0, 1, n)
    group = rng.choice(["a", "b", "c"], size=n)
    y = (x1 + 0.6 * x2 + (group == "a") + rng.normal(0, 0.3, n) > 0.4).astype(int)
    x1_vals = x1.tolist()
    for pos in range(0, n, 13):
        x1_vals[pos] = NA  # missing
    for pos in range(5, n, 41):
        x1_vals[pos] = 250.0  # wild outliers
    return DataFrame(
        {
            "x1": x1_vals,
            "x2": x2.tolist(),
            "group": group.tolist(),
            "y": y.tolist(),
        }
    )


class TestQualityState:
    def test_detects_missing(self):
        frame = DataFrame({"a": [1.0, NA], "y": [0, 1]})
        assert QualityState.of(frame, "y").has_missing

    def test_detects_duplicates(self):
        frame = DataFrame({"a": [1.0, 1.0], "y": [0, 0]})
        assert QualityState.of(frame, "y").has_duplicates

    def test_detects_outliers(self):
        values = [0.0] * 30 + [1.0] * 30 + [500.0]
        frame = DataFrame({"a": values, "y": [0, 1] * 30 + [1]})
        assert QualityState.of(frame, "y").has_outliers

    def test_detects_categoricals(self):
        frame = DataFrame({"g": ["a", "b"], "y": [0, 1]})
        assert QualityState.of(frame, "y").has_categoricals

    def test_clean_table_is_all_false(self):
        frame = DataFrame({"a": [float(i) for i in range(20)], "y": [0, 1] * 10})
        state = QualityState.of(frame, "y")
        assert not state.has_missing
        assert not state.has_duplicates
        assert not state.has_categoricals

    def test_target_excluded_from_profile(self):
        frame = DataFrame({"a": [1.0, 2.0], "y": [NA, 1.0]})
        assert not QualityState.of(frame, "y").has_missing


class TestAgent:
    def test_fit_learns_q_values(self):
        agent = Learn2CleanAgent(target="y", n_episodes=5, max_steps=3)
        agent.fit(make_dirty_frame(150))
        assert len(agent.q_table) > 0

    def test_missing_target_raises(self):
        with pytest.raises(ValueError):
            Learn2CleanAgent(target="zzz").fit(make_dirty_frame(50))

    def test_recommend_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Learn2CleanAgent(target="y").recommend(make_dirty_frame(50))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Learn2CleanAgent(target="y", max_steps=0)
        with pytest.raises(ValueError):
            Learn2CleanAgent(target="y", n_episodes=0)

    def test_recommend_is_bounded_and_loop_free(self):
        agent = Learn2CleanAgent(target="y", n_episodes=8, max_steps=4)
        frame = make_dirty_frame(200)
        pipeline = agent.fit(frame).recommend(frame)
        assert len(pipeline) <= 4
        names = [a.name for a in pipeline]
        assert len(names) == len(set(names))

    def test_pipeline_does_not_hurt_accuracy(self):
        frame = make_dirty_frame(300)
        agent = Learn2CleanAgent(target="y", n_episodes=20, max_steps=4)
        pipeline = agent.fit(frame).recommend(frame)
        working = frame
        for action in pipeline:
            working = action.transform(working)
        before = evaluate_downstream(frame, "y").accuracy
        after = evaluate_downstream(working, "y").accuracy
        assert after >= before - 0.05

    def test_deterministic_given_seed(self):
        frame = make_dirty_frame(150)
        a = Learn2CleanAgent(target="y", n_episodes=6, random_state=3).fit(frame)
        b = Learn2CleanAgent(target="y", n_episodes=6, random_state=3).fit(frame)
        assert a.q_table == b.q_table


class TestBaselineIntegration:
    @pytest.fixture()
    def dirty_dir(self, tmp_path):
        make_dirty_frame(300).to_csv(str(tmp_path / "train.csv"))
        return str(tmp_path)

    def test_rewrite_produces_executable_script(self, dirty_dir):
        baseline = Learn2Clean(data_dir=dirty_dir, target="y", n_episodes=8)
        script = "import pandas as pd\ndf = pd.read_csv('train.csv')"
        rewritten = baseline.rewrite(script, [])
        result = run_script(rewritten, data_dir=dirty_dir, sample_rows=200)
        assert result.ok, result.error
        assert "y = df['y']" in rewritten

    def test_pipeline_cached_across_rewrites(self, dirty_dir):
        baseline = Learn2Clean(data_dir=dirty_dir, target="y", n_episodes=5)
        script = "import pandas as pd\ndf = pd.read_csv('train.csv')"
        first = baseline.rewrite(script, [])
        second = baseline.rewrite(script, [])
        assert first == second

    def test_broken_load_returns_input(self, tmp_path):
        baseline = Learn2Clean(data_dir=str(tmp_path), target="y", n_episodes=3)
        script = "import pandas as pd\ndf = pd.read_csv('missing.csv')"
        assert baseline.rewrite(script, []) == script
