"""Tests for the ML substrate: linear models, trees, metrics, splitting."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    LinearRegression,
    LogisticRegression,
    accuracy_score,
    f1_score,
    mean_squared_error,
    r2_score,
    rmse,
    train_test_split,
)


@pytest.fixture()
def separable():
    """A linearly separable 2-D binary problem."""
    rng = np.random.default_rng(0)
    n = 200
    X = rng.normal(0, 1, (n, 2))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return X, y


class TestLogisticRegression:
    def test_learns_separable_data(self, separable):
        X, y = separable
        model = LogisticRegression().fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.95

    def test_deterministic(self, separable):
        X, y = separable
        a = LogisticRegression().fit(X, y).predict(X)
        b = LogisticRegression().fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_predict_proba_in_unit_interval(self, separable):
        X, y = separable
        proba = LogisticRegression().fit(X, y).predict_proba(X)
        assert proba.shape == (len(y), 2)
        assert np.all(proba >= 0) and np.all(proba <= 1)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_string_labels(self):
        X = np.array([[0.0], [1.0], [0.1], [0.9]])
        y = np.array(["no", "yes", "no", "yes"])
        predictions = LogisticRegression().fit(X, y).predict(X)
        assert set(predictions) <= {"no", "yes"}

    def test_single_class_predicts_it(self):
        X = np.array([[1.0], [2.0]])
        model = LogisticRegression().fit(X, [1, 1])
        assert list(model.predict(X)) == [1, 1]

    def test_multiclass_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 1)), [0, 1, 2])

    def test_mismatched_rows_raise(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 1)), [0, 1])

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((1, 1)))

    def test_scale_invariance_via_standardization(self, separable):
        X, y = separable
        base = accuracy_score(y, LogisticRegression().fit(X, y).predict(X))
        scaled = accuracy_score(
            y, LogisticRegression().fit(X * 1e4, y).predict(X * 1e4)
        )
        assert abs(base - scaled) < 0.05

    def test_constant_feature_tolerated(self, separable):
        X, y = separable
        X = np.column_stack([X, np.ones(len(y))])
        assert accuracy_score(y, LogisticRegression().fit(X, y).predict(X)) > 0.9

    def test_1d_input_reshaped(self):
        X = np.array([0.0, 0.1, 0.9, 1.0])
        y = np.array([0, 0, 1, 1])
        assert accuracy_score(y, LogisticRegression().fit(X, y).predict(X)) == 1.0


class TestLinearRegression:
    def test_recovers_exact_line(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([3.0, 5.0, 7.0])  # y = 2x + 1
        model = LinearRegression().fit(X, y)
        assert model.coef_[0] == pytest.approx(2.0, abs=1e-3)
        assert model.intercept_ == pytest.approx(1.0, abs=1e-3)

    def test_multifeature(self):
        rng = np.random.default_rng(1)
        X = rng.normal(0, 1, (100, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 4
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, [1.0, -2.0, 0.5], atol=1e-3)

    def test_r2_on_training_data_near_one(self):
        rng = np.random.default_rng(2)
        X = rng.normal(0, 1, (50, 2))
        y = X[:, 0] * 3 + 1
        model = LinearRegression().fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.999

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.zeros((1, 1)))

    def test_collinear_features_stable(self):
        X = np.array([[1.0, 2.0], [2.0, 4.0], [3.0, 6.0]])
        y = np.array([1.0, 2.0, 3.0])
        predictions = LinearRegression().fit(X, y).predict(X)
        assert np.allclose(predictions, y, atol=1e-2)


class TestDecisionTree:
    def test_learns_axis_aligned_split(self):
        X = np.array([[0.0], [0.2], [0.8], [1.0]] * 10)
        y = np.array([0, 0, 1, 1] * 10)
        model = DecisionTreeClassifier(max_depth=2, min_samples_split=2).fit(X, y)
        assert accuracy_score(y, model.predict(X)) == 1.0

    def test_learns_xor_with_depth(self):
        rng = np.random.default_rng(3)
        X = rng.random((400, 2))
        y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(int)
        model = DecisionTreeClassifier(max_depth=4, min_samples_split=4).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9

    def test_max_depth_zero_is_majority(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 0])
        model = DecisionTreeClassifier(max_depth=0).fit(X, y)
        assert list(model.predict(X)) == [1, 1, 1]

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((0, 1)), [])

    def test_feature_count_checked_on_predict(self):
        model = DecisionTreeClassifier().fit(np.zeros((10, 2)), [0] * 5 + [1] * 5)
        with pytest.raises(ValueError):
            model.predict(np.zeros((1, 3)))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 1)))

    def test_deterministic(self):
        rng = np.random.default_rng(4)
        X = rng.random((100, 3))
        y = (X[:, 0] > 0.5).astype(int)
        a = DecisionTreeClassifier().fit(X, y).predict(X)
        b = DecisionTreeClassifier().fit(X, y).predict(X)
        assert np.array_equal(a, b)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_accuracy_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([1], [1, 2])

    def test_f1_perfect(self):
        assert f1_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_f1_no_true_positives_is_zero(self):
        assert f1_score([1, 1], [0, 0]) == 0.0

    def test_f1_custom_positive(self):
        assert f1_score(["a", "b"], ["a", "b"], positive="a") == 1.0

    def test_mse_rmse(self):
        assert mean_squared_error([0, 0], [3, 4]) == 12.5
        assert rmse([0, 0], [3, 4]) == pytest.approx(np.sqrt(12.5))

    def test_r2_perfect_and_mean(self):
        y = [1.0, 2.0, 3.0]
        assert r2_score(y, y) == 1.0
        assert r2_score(y, [2.0, 2.0, 2.0]) == 0.0

    def test_r2_constant_target_is_zero(self):
        assert r2_score([5.0, 5.0], [1.0, 9.0]) == 0.0


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(20).reshape(-1, 1)
        y = np.arange(20)
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.25)
        assert len(X_test) == 5
        assert len(X_train) == 15

    def test_deterministic_given_seed(self):
        X = np.arange(10).reshape(-1, 1)
        y = np.arange(10)
        a = train_test_split(X, y, random_state=7)[1]
        b = train_test_split(X, y, random_state=7)[1]
        assert np.array_equal(a, b)

    def test_partition_is_complete(self):
        X = np.arange(10).reshape(-1, 1)
        y = np.arange(10)
        X_train, X_test, _, _ = train_test_split(X, y, test_size=0.3)
        combined = sorted(X_train.ravel().tolist() + X_test.ravel().tolist())
        assert combined == list(range(10))

    def test_rows_stay_aligned(self):
        X = np.arange(10).reshape(-1, 1)
        y = np.arange(10) * 10
        X_train, X_test, y_train, y_test = train_test_split(X, y)
        assert np.array_equal(X_train.ravel() * 10, y_train)
        assert np.array_equal(X_test.ravel() * 10, y_test)

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 1)), np.zeros(5), test_size=1.5)

    def test_too_few_rows(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((1, 1)), np.zeros(1))

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 1)), np.zeros(4))
