"""Tests for the downstream-evaluation pipeline (the Δ_M oracle)."""

import numpy as np
import pytest

from repro.minipandas import NA, DataFrame
from repro.ml import (
    DownstreamEvaluationError,
    evaluate_downstream,
    prepare_features,
)


def make_classification_frame(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x1 = rng.normal(0, 1, n)
    x2 = rng.normal(0, 1, n)
    y = (x1 + 0.5 * x2 + rng.normal(0, 0.3, n) > 0).astype(int)
    sex = rng.choice(["m", "f"], size=n)
    return DataFrame(
        {"x1": x1.tolist(), "x2": x2.tolist(), "sex": sex.tolist(), "y": y.tolist()}
    )


class TestPrepareFeatures:
    def test_shapes(self):
        frame = make_classification_frame()
        X, y = prepare_features(frame, "y")
        assert X.shape[0] == len(y) == 200
        # x1, x2 numeric + sex one-hot (2 categories)
        assert X.shape[1] == 4

    def test_missing_target_column_raises(self):
        with pytest.raises(DownstreamEvaluationError):
            prepare_features(DataFrame({"a": [1] * 20}), "y")

    def test_rows_with_missing_target_dropped(self):
        frame = make_classification_frame(50)
        frame["y"] = [NA] * 10 + frame["y"].tolist()[10:]
        X, y = prepare_features(frame, "y")
        assert len(y) == 40

    def test_too_few_target_rows_raises(self):
        frame = DataFrame({"a": [1.0] * 12, "y": [NA] * 8 + [1, 0, 1, 0]})
        with pytest.raises(DownstreamEvaluationError):
            prepare_features(frame, "y")

    def test_high_cardinality_object_dropped(self):
        frame = make_classification_frame(60)
        frame["id"] = [f"id-{i}" for i in range(60)]
        X, _ = prepare_features(frame, "y")
        assert X.shape[1] == 4  # id contributed nothing

    def test_missing_feature_values_imputed(self):
        frame = make_classification_frame(60)
        frame["x1"] = [NA] * 5 + frame["x1"].tolist()[5:]
        X, _ = prepare_features(frame, "y")
        assert not np.isnan(X).any()

    def test_no_features_raises(self):
        frame = DataFrame({"y": [0, 1] * 10})
        with pytest.raises(DownstreamEvaluationError):
            prepare_features(frame, "y")

    def test_all_nan_feature_column_skipped(self):
        frame = DataFrame({"a": [NA] * 20, "b": [1.0] * 20, "y": [0, 1] * 10})
        X, _ = prepare_features(frame, "y")
        assert X.shape[1] == 1


class TestEvaluateDownstream:
    def test_classification_learns(self):
        result = evaluate_downstream(make_classification_frame(), "y")
        assert result.task == "classification"
        assert result.accuracy > 0.8

    def test_deterministic(self):
        frame = make_classification_frame()
        a = evaluate_downstream(frame, "y").accuracy
        b = evaluate_downstream(frame, "y").accuracy
        assert a == b

    def test_tree_model(self):
        result = evaluate_downstream(make_classification_frame(), "y", model="tree")
        assert result.accuracy > 0.7

    def test_regression(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, 150)
        frame = DataFrame(
            {"x": x.tolist(), "t": (3 * x + rng.normal(0, 0.1, 150)).tolist()}
        )
        result = evaluate_downstream(frame, "t")
        assert result.task == "regression"
        assert result.accuracy > 0.9  # clipped R^2

    def test_explicit_task_overrides_inference(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1, 100)
        frame = DataFrame({"x": x.tolist(), "t": (x > 0).astype(int).tolist()})
        result = evaluate_downstream(frame, "t", task="regression")
        assert result.task == "regression"

    def test_unknown_task_raises(self):
        with pytest.raises(ValueError):
            evaluate_downstream(make_classification_frame(), "y", task="clustering")

    def test_row_cap_applies(self):
        frame = make_classification_frame(3000)
        result = evaluate_downstream(frame, "y")
        assert result.n_rows == 2000

    def test_accuracy_responds_to_label_noise(self):
        clean = make_classification_frame(400, seed=3)
        noisy = clean.copy()
        rng = np.random.default_rng(4)
        flipped = [
            1 - v if rng.random() < 0.4 else v for v in noisy["y"]
        ]
        noisy["y"] = flipped
        acc_clean = evaluate_downstream(clean, "y").accuracy
        acc_noisy = evaluate_downstream(noisy, "y").accuracy
        assert acc_clean > acc_noisy + 0.05

    def test_target_leakage_inflates_accuracy(self):
        frame = make_classification_frame(300, seed=5)
        leaky = frame.copy()
        leaky["y_copy"] = leaky["y"]
        acc_base = evaluate_downstream(frame, "y").accuracy
        acc_leaky = evaluate_downstream(leaky, "y").accuracy
        assert acc_leaky >= acc_base

    def test_multiclass_string_target_raises(self):
        frame = DataFrame(
            {"a": [1.0] * 30, "y": (["p", "q", "r"] * 10)}
        )
        with pytest.raises(DownstreamEvaluationError):
            evaluate_downstream(frame, "y")
