"""Shared fixtures: small datasets on disk and cached competition builds."""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.minipandas as mp
from repro.workloads import build_competition

_COMPETITION_CACHE = {}


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


@pytest.fixture()
def diabetes_dir(tmp_path):
    """A small diabetes-like CSV the paper's running example uses."""
    rng = np.random.default_rng(7)
    n = 240
    frame = mp.DataFrame(
        {
            "Pregnancies": rng.integers(0, 12, n).tolist(),
            "Glucose": rng.normal(120, 30, n).round(0).tolist(),
            "SkinThickness": rng.integers(5, 120, n).tolist(),
            "Age": [int(a) if a > 0 else None for a in rng.integers(-3, 80, n)],
            "Outcome": rng.integers(0, 2, n).tolist(),
        }
    )
    frame.to_csv(str(tmp_path / "diabetes.csv"))
    frame.to_csv(str(tmp_path / "train.csv"))
    return str(tmp_path)


@pytest.fixture()
def diabetes_corpus():
    """Three peer scripts echoing Table 1 of the paper."""
    return [
        "import pandas as pd\n"
        "df = pd.read_csv('diabetes.csv')\n"
        "df = df.fillna(df.mean())\n"
        "df = df[df['SkinThickness'] < 80]\n"
        "df = pd.get_dummies(df)",
        "import pandas as pd\n"
        "train = pd.read_csv('diabetes.csv')\n"
        "train = train.fillna(train.mean())\n"
        "train = train[train['SkinThickness'] < 80]\n"
        "train = pd.get_dummies(train)",
        "import pandas as pd\n"
        "df = pd.read_csv('diabetes.csv')\n"
        "df = df.fillna(df.mean())\n"
        "df = pd.get_dummies(df)",
    ]


@pytest.fixture()
def alex_script():
    """The paper's running-example input script (Figure 1a)."""
    return (
        "import pandas as pd\n"
        "df = pd.read_csv('diabetes.csv')\n"
        "df = df.fillna(df.median())\n"
        "df = df[df['Age'].between(18, 25)]\n"
        "df = pd.get_dummies(df)"
    )


def competition(name: str, tmp_root: str = "/tmp/repro-test-comps", **kwargs):
    """Session-cached competition build (building Sales etc. is not free)."""
    key = (name, tuple(sorted(kwargs.items())))
    if key not in _COMPETITION_CACHE:
        os.makedirs(tmp_root, exist_ok=True)
        _COMPETITION_CACHE[key] = build_competition(name, tmp_root, seed=0, **kwargs)
    return _COMPETITION_CACHE[key]


@pytest.fixture(scope="session")
def medical_competition():
    return competition("medical", n_scripts=16)


@pytest.fixture(scope="session")
def titanic_competition():
    return competition("titanic", n_scripts=16)


@pytest.fixture(scope="session")
def nlp_competition():
    return competition("nlp", n_scripts=12)
