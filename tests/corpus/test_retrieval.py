"""Tests for the sub-linear retrieval engine.

The acceptance contract: ``top_k`` equals brute-force signature
similarity exactly (the verify_retrieval audit), membership deltas under
any add/remove/refresh interleaving leave the index bit-identical to a
from-scratch build over the surviving scripts, results are deterministic
with content-address tie-breaking, and a retrieval-assembled search is
bit-identical to the same scripts curated by hand.
"""

import json
import random

import pytest

from repro.core import LSConfig, LucidScript, StandardizationError
from repro.corpus import (
    CorpusIndex,
    RetrievalIndex,
    RetrievalMismatchError,
    clear_corpus_cache,
    load_index,
    load_retrieval_index,
    save_index,
    save_retrieval_index,
    shared_store,
    table_signature,
)
from repro.corpus.signatures import (
    bands_collide,
    signature_from_dict,
    signature_similarity,
    signature_to_dict,
)
from repro.lang import ScriptError


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_corpus_cache()
    yield
    clear_corpus_cache()


def make_pool(seed: int, n_clusters: int = 6, variants: int = 5):
    """A seeded pool of parseable scripts in dataset clusters."""
    rng = random.Random(seed)
    scripts = []
    for c in range(n_clusters):
        cols = [f"c{c}_{j}" for j in range(3)]
        for v in range(variants):
            lines = ["import pandas as pd", f"df = pd.read_csv('data_{c}.csv')"]
            if rng.random() < 0.7:
                lines.append(f"df = df.fillna({v})")
            if rng.random() < 0.5:
                lines.append(f"df['{cols[0]}'] = df['{cols[0]}'].astype(int)")
            if rng.random() < 0.5:
                lines.append("df = df.drop_duplicates()")
            if rng.random() < 0.4:
                lines.append("df = df.dropna()")
            lines.append("df")
            scripts.append("\n".join(lines))
    return scripts


def retrieval_state(index: RetrievalIndex):
    return (index._signatures, index._bands, index._schema_posts)


class TestSignatures:
    def test_signature_round_trips_bit_identically(self):
        store = shared_store()
        record = store.get_or_parse(make_pool(0)[0])
        back = signature_from_dict(
            record.content_hash, json.loads(json.dumps(signature_to_dict(record.signature)))
        )
        assert back == record.signature

    def test_positive_similarity_implies_retrievability(self):
        """The gate: score > 0 only for band-colliding or schema-sharing pairs."""
        store = shared_store()
        records = [store.get_or_parse(s) for s in make_pool(1)]
        signatures = [r.signature for r in records if r is not None]
        for a in signatures:
            for b in signatures:
                score = signature_similarity(a, b)
                reachable = bands_collide(a.minhash, b.minhash) or (a.schema & b.schema)
                if score > 0:
                    assert reachable
                else:
                    assert not reachable

    def test_identical_scripts_have_similarity_one(self):
        store = shared_store()
        record = store.get_or_parse(make_pool(2)[0])
        assert signature_similarity(record.signature, record.signature) == 1.0

    def test_table_signature_is_schema_only(self):
        signature = table_signature(["Age", "BMI"])
        assert signature.minhash == ()
        assert signature.vocab == frozenset()
        assert signature.schema == frozenset({"Age", "BMI"})


class TestDeltas:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_interleaving_matches_from_scratch(self, seed):
        """add/remove interleavings leave state bit-identical to a rebuild."""
        rng = random.Random(seed)
        pool = make_pool(seed)
        index = RetrievalIndex()
        alive = {}  # script_id -> script text
        for step in range(80):
            if alive and rng.random() < 0.4:
                script_id = rng.choice(sorted(alive))
                del alive[script_id]
                index.remove_script(script_id)
            else:
                script = rng.choice(pool)
                script_id = index.add_script(script)
                assert script_id is not None
                alive[script_id] = script
        survivors = [alive[script_id] for script_id in sorted(alive)]
        if survivors:
            fresh = RetrievalIndex.from_scripts(survivors)
            assert retrieval_state(index) == retrieval_state(fresh)
        else:
            assert retrieval_state(index) == ({}, {}, {})

    def test_duplicate_members_do_not_change_buckets(self):
        pool = make_pool(3)
        index = RetrievalIndex.from_scripts(pool)
        state = retrieval_state(index)
        ids = [index.add_script(script) for script in pool]
        assert retrieval_state(index) == state
        for script_id in ids:
            index.remove_script(script_id)
        assert retrieval_state(index) == state

    def test_refresh_directory_matches_from_scratch(self, tmp_path):
        pool = make_pool(4)
        pool_dir = tmp_path / "pool"
        pool_dir.mkdir()
        for position, script in enumerate(pool):
            (pool_dir / f"s_{position:03d}.py").write_text(script + "\n")
        index = RetrievalIndex()
        index.refresh(str(pool_dir))
        # change one file, delete another, add a third
        (pool_dir / "s_000.py").write_text(pool[1] + "\ndf = df.dropna()\ndf\n")
        (pool_dir / "s_001.py").unlink()
        (pool_dir / "zz_new.py").write_text(pool[2] + "\n")
        index.refresh()
        fresh = RetrievalIndex()
        fresh.refresh(str(pool_dir))
        assert retrieval_state(index) == retrieval_state(fresh)
        assert index.top_k(pool[2], 5) == fresh.top_k(pool[2], 5)


class TestTopK:
    def test_equals_brute_force_for_every_pool_query(self):
        """The verify_retrieval audit over a whole seeded pool."""
        pool = make_pool(5)
        index = RetrievalIndex.from_scripts(pool)
        for script in pool:
            hits = index.top_k(script, 7, verify=True)  # raises on divergence
            brute = index.brute_force_top_k(script, 7)
            assert [(h.content_hash, h.score) for h in hits] == [
                (h.content_hash, h.score) for h in brute
            ]

    def test_self_is_top_hit(self):
        pool = make_pool(6)
        index = RetrievalIndex.from_scripts(pool)
        record = index.store.get_or_parse(pool[0])
        hits = index.top_k(pool[0], 3)
        assert hits[0].content_hash == record.content_hash
        assert hits[0].score == 1.0

    def test_deterministic_across_pool_insertion_orders(self):
        pool = make_pool(7)
        shuffled = list(pool)
        random.Random(99).shuffle(shuffled)
        a = RetrievalIndex.from_scripts(pool)
        b = RetrievalIndex.from_scripts(shuffled)
        for script in pool[:5]:
            assert [(h.content_hash, h.score) for h in a.top_k(script, 6)] == [
                (h.content_hash, h.score) for h in b.top_k(script, 6)
            ]

    def test_zero_score_padding_breaks_ties_on_content_address(self):
        """An unrelated query pads via full-scan fallback in hash order."""
        pool = make_pool(8)
        index = RetrievalIndex.from_scripts(pool)
        before = index.counters.snapshot()
        hits = index.top_k(table_signature(["no_such_column"]), 5)
        assert index.counters.fallbacks == before[2] + 1
        assert all(hit.score == 0.0 for hit in hits)
        assert [h.content_hash for h in hits] == sorted(h.content_hash for h in hits)

    def test_table_query_ranks_schema_overlap(self):
        pool = make_pool(9)
        index = RetrievalIndex.from_scripts(pool)
        hits = index.top_k(table_signature(["c0_0"]), 3)
        assert hits[0].score > 0
        assert "c0_0" in hits[0].record.signature.schema

    def test_counters_and_validation(self):
        pool = make_pool(10)
        index = RetrievalIndex.from_scripts(pool)
        with pytest.raises(ValueError):
            index.top_k(pool[0], 0)
        with pytest.raises(ScriptError):
            index.top_k("this is not python (", 3)
        with pytest.raises(TypeError):
            index.top_k(12345, 3)
        before = index.counters.snapshot()
        index.top_k(pool[0], 3)
        assert index.counters.queries == before[0] + 1
        assert index.counters.candidates > before[1]

    def test_audit_catches_a_corrupted_index(self):
        pool = make_pool(11)
        index = RetrievalIndex.from_scripts(pool)
        target = index.store.get_or_parse(pool[0]).content_hash
        # simulate an engine bug: unhook one script from every bucket
        for bucket in index._bands.values():
            bucket.discard(target)
        for posting in index._schema_posts.values():
            posting.discard(target)
        with pytest.raises(RetrievalMismatchError):
            index.top_k(pool[0], 3, verify=True)


class TestAssembly:
    def test_assembled_corpus_is_bit_identical_to_from_scratch(self):
        pool = make_pool(12)
        index = RetrievalIndex.from_scripts(pool)
        corpus = index.assemble(pool[0], 8)
        corpus.verify()  # bit-identity audit vs CorpusVocabulary.from_scripts
        assert corpus.n_scripts == 8

    def test_assembly_order_is_retrieval_order(self):
        pool = make_pool(13)
        index = RetrievalIndex.from_scripts(pool)
        hits = index.top_k(pool[0], 6)
        corpus = index.assemble_from_hits(hits)
        assert corpus.content_hashes() == [hit.content_hash for hit in hits]

    def test_empty_hits_raise(self):
        index = RetrievalIndex()
        with pytest.raises(ScriptError):
            index.assemble_from_hits([])


class TestPersistence:
    def test_snapshot_round_trip(self, tmp_path):
        pool = make_pool(14)
        index = RetrievalIndex.from_scripts(pool)
        path = str(tmp_path / "pool.retr.json")
        save_retrieval_index(index, path)
        back = load_retrieval_index(path)
        assert retrieval_state(back) == retrieval_state(index)
        assert back.top_k(pool[0], 5) == index.top_k(pool[0], 5)

    def test_kind_mismatch_is_rejected_both_ways(self, tmp_path):
        pool = make_pool(15)
        retrieval_path = str(tmp_path / "a.json")
        corpus_path = str(tmp_path / "b.json")
        save_retrieval_index(RetrievalIndex.from_scripts(pool), retrieval_path)
        save_index(CorpusIndex.from_scripts(pool), corpus_path)
        with pytest.raises(ValueError, match="retrieval"):
            load_index(retrieval_path)
        with pytest.raises(ValueError, match="corpus"):
            load_retrieval_index(corpus_path)

    def test_pre_retrieval_snapshot_recomputes_signatures(self, tmp_path):
        """Old snapshots (no persisted signatures) load bit-identically."""
        pool = make_pool(16)
        index = CorpusIndex.from_scripts(pool)
        path = str(tmp_path / "old.json")
        save_index(index, path)
        with open(path) as handle:
            payload = json.load(handle)
        for record_payload in payload["records"].values():
            del record_payload["signature"]
        with open(path, "w") as handle:
            json.dump(payload, handle)
        back = load_index(path)
        for content_hash, record in back._records.items():
            assert record.signature == index._records[content_hash].signature


class TestLucidScriptRetrieval:
    def test_full_search_parity_with_hand_curated_corpus(
        self, diabetes_corpus, diabetes_dir
    ):
        """Retrieval-assembled standardization == hand-curated, bit for bit."""
        noise = make_pool(17)
        pool = RetrievalIndex(store=shared_store())
        for script in diabetes_corpus + noise:
            pool.add_script(script)
        user = (
            "import pandas as pd\n"
            "df = pd.read_csv('diabetes.csv')\n"
            "df = df.fillna(df.mean())\n"
            "df = pd.get_dummies(df)"
        )
        k = len(diabetes_corpus)
        config = LSConfig(retrieval_k=k, verify_retrieval=True)
        retrieved = LucidScript(pool, data_dir=diabetes_dir, config=config)
        result_retrieved = retrieved.standardize(user)
        hand = [hit.record.source for hit in pool.top_k(user, k)]
        curated = LucidScript(hand, data_dir=diabetes_dir, config=LSConfig())
        result_curated = curated.standardize(user)
        assert result_retrieved.output_script == result_curated.output_script
        assert result_retrieved.re_before == result_curated.re_before
        assert result_retrieved.re_after == result_curated.re_after
        assert result_retrieved.stats.n_retrieval_queries == 1
        assert result_retrieved.stats.n_retrieval_candidates > 0

    def test_retrieval_prefers_same_dataset_peers(self, diabetes_corpus):
        noise = make_pool(18)
        pool = RetrievalIndex(store=shared_store())
        for script in diabetes_corpus + noise:
            pool.add_script(script)
        peer_hashes = {
            pool.store.get_or_parse(script).content_hash
            for script in diabetes_corpus
        }  # peers 0 and 1 lemmatize to the same canonical script
        hits = pool.top_k(diabetes_corpus[0], len(peer_hashes))
        assert {hit.content_hash for hit in hits} == peer_hashes

    def test_score_reuses_search_space_for_same_query(self, diabetes_corpus):
        pool = RetrievalIndex.from_scripts(diabetes_corpus)
        system = LucidScript(pool, config=LSConfig(retrieval_k=2))
        first = system.score(diabetes_corpus[0])
        queries_after_first = pool.counters.queries
        assert system.score(diabetes_corpus[0]) == first
        assert pool.counters.queries == queries_after_first  # reused
        system.score(diabetes_corpus[2])  # different query re-retrieves
        assert pool.counters.queries == queries_after_first + 1

    def test_unparseable_query_raises_standardization_error(self, diabetes_corpus):
        pool = RetrievalIndex.from_scripts(diabetes_corpus)
        system = LucidScript(pool, config=LSConfig(retrieval_k=2))
        with pytest.raises(StandardizationError):
            system.score("not a script ((((")

    def test_config_validates_retrieval_k(self):
        with pytest.raises(ValueError):
            LSConfig(retrieval_k=0)
