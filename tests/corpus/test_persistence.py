"""Tests for corpus-index snapshots (save/load + format versioning)."""

import json
import os

import pytest

from repro.corpus import (
    CorpusIndex,
    ScriptStore,
    index_from_dict,
    index_to_dict,
    load_index,
    save_index,
)

from .test_index import SCRIPT_POOL, assert_bit_identical


@pytest.fixture()
def index(tmp_path, diabetes_corpus):
    d = tmp_path / "corpus"
    d.mkdir()
    for position, script in enumerate(diabetes_corpus):
        (d / f"peer_{position}.py").write_text(script + "\n")
    built = CorpusIndex()
    built.refresh(str(d))
    return built


class TestRoundtrip:
    def test_vocabulary_bit_identical(self, index, tmp_path):
        path = str(tmp_path / "index.json")
        save_index(index, path)
        restored = load_index(path)
        assert_bit_identical(restored.to_vocabulary(), index.to_vocabulary())
        restored.verify()

    def test_reload_parses_nothing(self, index, tmp_path):
        path = str(tmp_path / "index.json")
        save_index(index, path)
        store = ScriptStore()
        restored = load_index(path, store=store)
        assert store.counters.parses == 0
        assert restored.n_scripts == index.n_scripts

    def test_manifest_survives_so_refresh_is_warm(self, index, tmp_path):
        path = str(tmp_path / "index.json")
        save_index(index, path)
        restored = load_index(path)
        report = restored.refresh()
        assert report.unchanged_stat == 3
        assert report.reparsed == 0

    def test_refresh_after_reload_sees_changes(self, index, tmp_path, alex_script):
        path = str(tmp_path / "index.json")
        save_index(index, path)
        changed = os.path.join(index.corpus_dir, "peer_0.py")
        with open(changed, "w") as handle:
            handle.write(alex_script + "\n")
        restored = load_index(path)
        report = restored.refresh()
        assert report.changed == 1
        assert report.reparsed == 1
        restored.verify()

    def test_member_order_preserved(self):
        index = CorpusIndex.from_scripts(SCRIPT_POOL)
        index.remove_script(index.script_ids()[2])
        restored = index_from_dict(index_to_dict(index))
        assert restored.script_ids() == index.script_ids()
        assert restored.content_hashes() == index.content_hashes()

    def test_snapshot_is_json_with_version(self, index, tmp_path):
        path = str(tmp_path / "index.json")
        save_index(index, path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["format_version"] == 1
        assert len(payload["members"]) == 3


class TestFormatVersion:
    def test_newer_version_rejected_with_clear_error(self, index):
        payload = index_to_dict(index)
        payload["format_version"] = 2
        with pytest.raises(ValueError, match="newer than the supported"):
            index_from_dict(payload)

    def test_junk_version_rejected(self, index):
        payload = index_to_dict(index)
        payload["format_version"] = "banana"
        with pytest.raises(ValueError, match="unsupported corpus index format"):
            index_from_dict(payload)
