"""Tests for the warm cache and its LucidScript wiring.

The acceptance contract: routing corpus construction through the index
(warm cache or a prebuilt ``CorpusIndex``) changes construction cost
only — scores and search results are identical to the cache-free path.
"""

import pytest

from repro.core import LSConfig, LucidScript, TableJaccardIntent
from repro.corpus import (
    CorpusIndex,
    cached_index,
    clear_corpus_cache,
    corpus_cache_counters,
    shared_store,
)
from repro.lang import CorpusVocabulary


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_corpus_cache()
    yield
    clear_corpus_cache()


class TestWarmCache:
    def test_repeat_construction_hits_index_layer(self, diabetes_corpus):
        cached_index(diabetes_corpus)
        before = corpus_cache_counters()
        again = cached_index(diabetes_corpus)
        delta = corpus_cache_counters().delta(before)
        assert delta.index_hits == 1
        assert delta.script_parses == 0
        assert again.n_scripts == 3

    def test_overlapping_corpora_share_the_store(self, diabetes_corpus):
        cached_index(diabetes_corpus)
        before = corpus_cache_counters()
        cached_index(diabetes_corpus[:2])  # different sequence, same scripts
        delta = corpus_cache_counters().delta(before)
        assert delta.index_misses == 1
        assert delta.script_parses == 0  # every script already stored

    def test_prewarm_via_shared_store(self, diabetes_corpus):
        store = shared_store()
        for script in diabetes_corpus:
            store.get_or_parse(script)
        before = corpus_cache_counters()
        cached_index(diabetes_corpus)
        assert corpus_cache_counters().delta(before).script_parses == 0

    def test_clear_resets_both_layers(self, diabetes_corpus):
        cached_index(diabetes_corpus)
        clear_corpus_cache()
        counters = corpus_cache_counters()
        assert counters.index_hits == counters.index_misses == 0
        assert counters.script_parses == 0


class TestLucidScriptWiring:
    def test_cached_vocabulary_bit_identical(self, diabetes_corpus):
        system = LucidScript(diabetes_corpus)
        fresh = CorpusVocabulary.from_scripts(diabetes_corpus)
        assert system.vocabulary.edge_counts == fresh.edge_counts
        assert system.vocabulary.relative_positions == fresh.relative_positions
        assert {
            s: list(c.items()) for s, c in system.vocabulary.successors.items()
        } == {s: list(c.items()) for s, c in fresh.successors.items()}

    def test_accepts_prebuilt_index(self, diabetes_corpus):
        index = CorpusIndex.from_scripts(diabetes_corpus)
        system = LucidScript(index)
        assert system.vocabulary.stats().n_scripts == 3

    def test_accepts_vocabulary_directly(self, diabetes_corpus):
        vocabulary = CorpusVocabulary.from_scripts(diabetes_corpus)
        system = LucidScript(vocabulary)
        assert system.vocabulary is vocabulary

    def test_verify_index_audits_construction(self, diabetes_corpus):
        LucidScript(diabetes_corpus, config=LSConfig(verify_index=True))

    def test_search_results_identical_with_and_without_index(
        self, diabetes_corpus, alex_script, diabetes_dir
    ):
        """Acceptance: same output script, improvement, and scores on the
        cache-free, warm-cache, and prebuilt-index paths."""
        results = []
        for corpus in (
            diabetes_corpus,  # warm cache (corpus_cache=True default)
            CorpusIndex.from_scripts(diabetes_corpus),  # prebuilt index
        ):
            system = LucidScript(
                corpus,
                data_dir=diabetes_dir,
                intent=TableJaccardIntent(tau=0.5),
                config=LSConfig(seq=6, beam_size=2, sample_rows=120),
            )
            results.append(system.standardize(alex_script))
        cold = LucidScript(
            diabetes_corpus,
            data_dir=diabetes_dir,
            intent=TableJaccardIntent(tau=0.5),
            config=LSConfig(
                seq=6, beam_size=2, sample_rows=120, corpus_cache=False
            ),
        ).standardize(alex_script)
        for result in results:
            assert result.output_script == cold.output_script
            assert result.improvement == cold.improvement
            assert result.re_before == cold.re_before
            assert result.re_after == cold.re_after

    def test_corpus_counters_surface_in_search_stats(
        self, diabetes_corpus, alex_script, diabetes_dir
    ):
        config = LSConfig(seq=4, beam_size=1, sample_rows=120)
        LucidScript(
            diabetes_corpus,
            data_dir=diabetes_dir,
            intent=TableJaccardIntent(tau=0.5),
            config=config,
        )
        system = LucidScript(
            diabetes_corpus,
            data_dir=diabetes_dir,
            intent=TableJaccardIntent(tau=0.5),
            config=config,
        )
        result = system.standardize(alex_script)
        breakdown = result.stats.breakdown()
        assert breakdown["CorpusIndexHits"] == 1
        assert breakdown["CorpusReparses"] == 0
        assert "CorpusScriptHits" in breakdown


class TestCorpusKeyFastPath:
    """The addr-based corpus key: warm lookups never re-hash script text."""

    def test_first_lookup_is_slow_then_fast(self, diabetes_corpus):
        before = corpus_cache_counters()
        cached_index(diabetes_corpus)
        delta = corpus_cache_counters().delta(before)
        assert delta.key_slow == len(diabetes_corpus)
        assert delta.key_fast == 0
        before = corpus_cache_counters()
        cached_index(diabetes_corpus)
        delta = corpus_cache_counters().delta(before)
        assert delta.key_fast == len(diabetes_corpus)
        assert delta.key_slow == 0
        assert delta.index_hits == 1

    def test_key_is_order_sensitive(self, diabetes_corpus):
        """Corpus order is semantic (tie order, templates, positions)."""
        forward = cached_index(diabetes_corpus)
        reversed_ = cached_index(list(reversed(diabetes_corpus)))
        assert forward is not reversed_

    def test_unparseable_scripts_get_stable_failure_keys(self, diabetes_corpus):
        scripts = diabetes_corpus + ["not python ((("]
        from repro.lang import ScriptError

        with pytest.raises(ScriptError):
            cached_index(["not python ((("])
        # same broken corpus -> same key -> the index cache still works
        first = cached_index(scripts)
        assert cached_index(scripts) is first

    def test_key_work_is_reused_by_construction(self, diabetes_corpus):
        """The key path's parses feed the store the build then hits."""
        before = corpus_cache_counters()
        cached_index(diabetes_corpus)
        delta = corpus_cache_counters().delta(before)
        # scripts 0/1 share a content hash: 2 unique parses total, and
        # the from_scripts build right after finds every record resident
        assert delta.script_parses == 2
        assert delta.script_hits >= len(diabetes_corpus)


class TestSharedStoreBound:
    def test_shared_store_is_bounded_by_default(self):
        from repro.corpus.cache import SHARED_STORE_LIMIT

        assert shared_store().capacity == SHARED_STORE_LIMIT

    def test_configure_shared_store_rebounds(self, diabetes_corpus):
        from repro.corpus import configure_shared_store

        try:
            store = configure_shared_store(2)
            assert store.capacity == 2
            assert shared_store() is store
            scripts = [
                f"import pandas as pd\ndf = pd.read_csv('f{i}.csv')\ndf" for i in range(4)
            ]
            for script in scripts:
                store.get_or_parse(script)
            assert len(store) == 2
            assert corpus_cache_counters().script_evictions == 2
        finally:
            from repro.corpus.cache import SHARED_STORE_LIMIT

            configure_shared_store(SHARED_STORE_LIMIT)

    def test_indexes_keep_strong_refs_across_evictions(self):
        from repro.corpus import configure_shared_store
        from repro.corpus.cache import SHARED_STORE_LIMIT

        try:
            store = configure_shared_store(1)
            scripts = [
                f"import pandas as pd\ndf = pd.read_csv('f{i}.csv')\ndf" for i in range(3)
            ]
            index = CorpusIndex.from_scripts(scripts, store=store)
            assert len(store) == 1  # store kept only the most recent
            assert index.n_scripts == 3  # the index kept all of its records
            index.verify()  # still bit-identical to a cold rebuild
        finally:
            configure_shared_store(SHARED_STORE_LIMIT)


class TestSharedRetrievalIndex:
    def test_singleton_over_shared_store(self, diabetes_corpus):
        from repro.corpus import shared_retrieval_index

        pool = shared_retrieval_index()
        assert pool is shared_retrieval_index()
        assert pool.store is shared_store()
        for script in diabetes_corpus:
            pool.add_script(script)
        assert pool.n_scripts == len(diabetes_corpus)
        clear_corpus_cache()
        assert shared_retrieval_index() is not pool
        assert shared_retrieval_index().n_scripts == 0
