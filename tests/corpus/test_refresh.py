"""Tests for the refresh protocol: manifest staleness and reparse counts."""

import json
import os

import pytest

from repro.corpus import CorpusIndex


@pytest.fixture()
def corpus_dir(tmp_path, diabetes_corpus):
    d = tmp_path / "corpus"
    d.mkdir()
    for position, script in enumerate(diabetes_corpus):
        (d / f"peer_{position}.py").write_text(script + "\n")
    return str(d)


class TestRefresh:
    def test_initial_build(self, corpus_dir):
        index = CorpusIndex()
        report = index.refresh(corpus_dir)
        assert report.added == 3
        assert report.scanned == 3
        assert index.n_scripts == 3

    def test_noop_refresh_never_reads_files(self, corpus_dir):
        index = CorpusIndex()
        index.refresh(corpus_dir)
        report = index.refresh()  # corpus_dir remembered
        assert report.unchanged_stat == 3
        assert report.reparsed == 0
        assert report.added == report.changed == report.removed == 0

    def test_one_changed_file_reparses_exactly_one(self, corpus_dir, alex_script):
        index = CorpusIndex()
        index.refresh(corpus_dir)
        path = os.path.join(corpus_dir, "peer_1.py")
        with open(path, "w") as handle:
            handle.write(alex_script + "\n")
        report = index.refresh()
        assert report.changed == 1
        assert report.reparsed == 1
        assert report.unchanged_stat == 2
        index.verify()

    def test_touched_but_identical_file_is_not_parsed(self, corpus_dir):
        index = CorpusIndex()
        index.refresh(corpus_dir)
        path = os.path.join(corpus_dir, "peer_0.py")
        os.utime(path, ns=(1, 1))  # mtime change, same bytes
        report = index.refresh()
        assert report.unchanged_hash == 1
        assert report.reparsed == 0
        # the manifest learned the new stat signature
        assert index.refresh().unchanged_stat == 3

    def test_removed_file_leaves_the_index(self, corpus_dir):
        index = CorpusIndex()
        index.refresh(corpus_dir)
        os.remove(os.path.join(corpus_dir, "peer_2.py"))
        report = index.refresh()
        assert report.removed == 1
        assert index.n_scripts == 2
        index.verify()

    def test_notebook_files_are_flattened(self, corpus_dir, alex_script):
        nb = {"cells": [{"cell_type": "code",
                         "source": alex_script.splitlines(keepends=True)}]}
        with open(os.path.join(corpus_dir, "extra.ipynb"), "w") as handle:
            json.dump(nb, handle)
        index = CorpusIndex()
        report = index.refresh(corpus_dir)
        assert report.added == 4
        assert index.n_scripts == 4
        index.verify()

    def test_broken_notebook_reported_not_fatal(self, corpus_dir):
        with open(os.path.join(corpus_dir, "bad.ipynb"), "w") as handle:
            handle.write("{not json")
        index = CorpusIndex()
        report = index.refresh(corpus_dir)
        assert report.failed == 1
        assert report.failed_paths == ["bad.ipynb"]
        assert index.n_scripts == 3

    def test_unparseable_python_reported_not_fatal(self, corpus_dir):
        with open(os.path.join(corpus_dir, "broken.py"), "w") as handle:
            handle.write("def broken(:\n")
        index = CorpusIndex()
        report = index.refresh(corpus_dir)
        assert report.failed == 1
        assert "broken.py" in report.failed_paths
        # a failed file stays in the manifest, so an unchanged rescan
        # does not retry it
        assert index.refresh().failed == 0

    def test_refresh_without_directory_raises(self):
        with pytest.raises(ValueError):
            CorpusIndex().refresh()

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(ValueError):
            CorpusIndex().refresh(str(tmp_path / "nope"))

    def test_report_as_dict_keys(self, corpus_dir):
        report = CorpusIndex().refresh(corpus_dir)
        payload = report.as_dict()
        assert payload["added"] == 3
        assert set(payload) == {
            "scanned", "added", "changed", "removed",
            "unchanged_stat", "unchanged_hash", "failed", "reparsed",
        }
