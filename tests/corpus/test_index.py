"""Bit-identity tests for the incremental corpus index.

The contract under test: after ANY interleaving of add_script /
remove_script / refresh, ``CorpusIndex.to_vocabulary()`` equals
``CorpusVocabulary.from_scripts`` over the surviving scripts in index
order — exactly, including successor tie order and the float means of
``relative_positions``.
"""

import random

import pytest

from repro.corpus import (
    CorpusIndex,
    IndexMismatchError,
    index_from_dict,
    index_to_dict,
)
from repro.lang import CorpusVocabulary, ScriptError, lemmatize

#: A deliberately overlapping script pool: shared statements (so counts
#: and successor targets collide across scripts), lemma-equivalent pairs
#: (train vs df), df- and non-df template candidates, and distinct
#: orderings of the same steps (so successor tie order matters).
SCRIPT_POOL = [
    "import pandas as pd\n"
    "df = pd.read_csv('diabetes.csv')\n"
    "df = df.fillna(df.mean())\n"
    "df = df[df['SkinThickness'] < 80]\n"
    "df = pd.get_dummies(df)",
    "import pandas as pd\n"
    "train = pd.read_csv('diabetes.csv')\n"
    "train = train.fillna(train.mean())\n"
    "train = train[train['SkinThickness'] < 80]\n"
    "train = pd.get_dummies(train)",
    "import pandas as pd\n"
    "df = pd.read_csv('diabetes.csv')\n"
    "df = df.fillna(df.mean())\n"
    "df = pd.get_dummies(df)",
    "import pandas as pd\n"
    "df = pd.read_csv('diabetes.csv')\n"
    "df = pd.get_dummies(df)\n"
    "df = df.fillna(df.mean())",
    "import pandas as pd\n"
    "df = pd.read_csv('train.csv')\n"
    "df = df.dropna()\n"
    "df = df[df['Age'] > 18]",
    "import pandas as pd\n"
    "df = pd.read_csv('train.csv')\n"
    "out = df.dropna()",
    "import pandas as pd\n"
    "df = pd.read_csv('diabetes.csv')\n"
    "df = df.fillna(df.median())\n"
    "df = df[df['Glucose'] > 100]\n"
    "df = df.dropna()",
]


def assert_bit_identical(mine: CorpusVocabulary, fresh: CorpusVocabulary) -> None:
    """Compare every structure a vocabulary exposes, order included."""
    assert mine.edge_counts == fresh.edge_counts
    assert mine.onegram_counts == fresh.onegram_counts
    assert mine.ngram_counts == fresh.ngram_counts
    assert mine.total_edges == fresh.total_edges
    assert mine.onegram_templates == fresh.onegram_templates
    # float means must be the exact same floats, not approximately equal
    assert mine.relative_positions == fresh.relative_positions
    # successor tie order feeds GetSteps enumeration: item order matters
    assert {s: list(c.items()) for s, c in mine.successors.items()} == {
        s: list(c.items()) for s, c in fresh.successors.items()
    }
    assert mine.stats() == fresh.stats()
    assert mine.epsilon == fresh.epsilon
    for sig in fresh.ngram_counts:
        assert mine.statement_frequency(sig) == fresh.statement_frequency(sig)


class TestFromScripts:
    def test_matches_cold_build(self):
        index = CorpusIndex.from_scripts(SCRIPT_POOL)
        assert_bit_identical(index.to_vocabulary(), CorpusVocabulary.from_scripts(SCRIPT_POOL))

    def test_verify_passes(self):
        CorpusIndex.from_scripts(SCRIPT_POOL).verify()

    def test_deduplicates_content(self):
        index = CorpusIndex.from_scripts(SCRIPT_POOL)
        # scripts 0 and 1 are lemma-equivalent: one record, two members
        assert index.n_scripts == len(SCRIPT_POOL)
        assert index.n_unique_scripts == len(SCRIPT_POOL) - 1
        assert index.store.counters.parses == len(SCRIPT_POOL) - 1

    def test_broken_scripts_skipped_like_from_scripts(self):
        scripts = SCRIPT_POOL[:3] + ["not ( python"]
        index = CorpusIndex.from_scripts(scripts)
        assert index.n_scripts == 3
        assert index.n_failures == 1
        assert_bit_identical(
            index.to_vocabulary(), CorpusVocabulary.from_scripts(scripts)
        )

    def test_all_broken_raises(self):
        with pytest.raises(ScriptError):
            CorpusIndex.from_scripts(["not ( python", "also ) bad"])

    def test_empty_vocabulary_refused(self):
        with pytest.raises(ValueError):
            CorpusIndex().to_vocabulary()


class TestDeltas:
    def test_remove_matches_cold_build_on_survivors(self):
        index = CorpusIndex.from_scripts(SCRIPT_POOL)
        ids = index.script_ids()
        index.remove_script(ids[1])
        index.remove_script(ids[4])
        survivors = [s for i, s in enumerate(SCRIPT_POOL) if i not in (1, 4)]
        assert_bit_identical(
            index.to_vocabulary(), CorpusVocabulary.from_scripts(survivors)
        )

    def test_add_after_remove(self):
        index = CorpusIndex.from_scripts(SCRIPT_POOL[:4])
        index.remove_script(index.script_ids()[0])
        index.add_script(SCRIPT_POOL[5])
        survivors = SCRIPT_POOL[1:4] + [SCRIPT_POOL[5]]
        assert_bit_identical(
            index.to_vocabulary(), CorpusVocabulary.from_scripts(survivors)
        )

    def test_remove_unknown_id_raises(self):
        index = CorpusIndex.from_scripts(SCRIPT_POOL[:2])
        with pytest.raises(KeyError):
            index.remove_script(999)

    def test_counters_prune_to_zero(self):
        index = CorpusIndex.from_scripts(SCRIPT_POOL[:2])
        for script_id in index.script_ids():
            index.remove_script(script_id)
        assert not index.edge_counts
        assert not index.onegram_counts
        assert not index.ngram_counts
        assert index.stats().n_scripts == 0

    def test_verify_catches_tampering(self):
        index = CorpusIndex.from_scripts(SCRIPT_POOL)
        sig = next(iter(index.ngram_counts))
        index.ngram_counts[sig] += 1
        with pytest.raises(IndexMismatchError):
            index.verify()


class TestRandomizedInterleavings:
    """Satellite: the property test.  Any interleaving of add / remove /
    refresh leaves the index bit-identical to a cold build over the
    surviving scripts — including after a persistence round-trip."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_add_remove_interleaving(self, seed):
        rng = random.Random(seed)
        index = CorpusIndex()
        alive = {}  # script_id -> raw script
        for _ in range(40):
            if alive and rng.random() < 0.4:
                script_id = rng.choice(sorted(alive))
                index.remove_script(script_id)
                del alive[script_id]
            else:
                script = rng.choice(SCRIPT_POOL)
                script_id = index.add_script(script)
                alive[script_id] = script
        if not alive:
            index.add_script(SCRIPT_POOL[0])
            alive[max(index.script_ids())] = SCRIPT_POOL[0]
        survivors = [alive[i] for i in sorted(alive)]
        fresh = CorpusVocabulary.from_scripts(survivors)
        assert_bit_identical(index.to_vocabulary(), fresh)
        index.verify()
        # the same contract must survive a snapshot round-trip
        restored = index_from_dict(index_to_dict(index))
        assert_bit_identical(restored.to_vocabulary(), fresh)
        restored.verify()

    @pytest.mark.parametrize("seed", [10, 11])
    def test_refresh_interleaving(self, seed, tmp_path):
        """Random file creates/edits/deletes between refreshes always
        reconcile the index to a cold build over the directory."""
        rng = random.Random(seed)
        directory = tmp_path / "corpus"
        directory.mkdir()
        files = {}  # name -> script
        next_file = 0
        index = CorpusIndex()
        for _ in range(8):
            for _ in range(rng.randrange(1, 4)):
                action = rng.random()
                if action < 0.5 or not files:
                    name = f"s{next_file}.py"
                    next_file += 1
                    files[name] = rng.choice(SCRIPT_POOL)
                    (directory / name).write_text(files[name])
                elif action < 0.8:
                    name = rng.choice(sorted(files))
                    files[name] = rng.choice(SCRIPT_POOL)
                    (directory / name).write_text(files[name])
                else:
                    name = rng.choice(sorted(files))
                    del files[name]
                    (directory / name).unlink()
            index.refresh(str(directory))
            # the index tracks exactly the directory's surviving files
            assert sorted(index.sources()) == sorted(
                lemmatize(script) for script in files.values()
            )
            if files:
                index.verify()
                assert_bit_identical(
                    index.to_vocabulary(),
                    CorpusVocabulary.from_scripts(index.sources()),
                )
