"""Thread-safety of the process-wide corpus cache and LRUCache.

The server engine admits jobs (content-addressing corpora) on its event
loop while the wave thread curates and clears, so the module-level
cache state must survive concurrent mutation.  These are regression
tests for the locked paths: they assert no exceptions, no lost
invariants, and — for the retrieval pin — that
``shared_retrieval_index().store is shared_store()`` holds after any
configure/clear interleaving.
"""

import random
import threading

import pytest

from repro._lru import LRUCache
from repro.corpus import (
    cached_index,
    clear_corpus_cache,
    configure_shared_store,
    corpus_key,
    shared_retrieval_index,
    shared_store,
)
from repro.corpus.cache import SHARED_STORE_LIMIT


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_corpus_cache()
    yield
    configure_shared_store(SHARED_STORE_LIMIT)


class TestThreadSafeLRUCache:
    def test_serial_path_has_no_lock(self):
        assert LRUCache(4)._lock is None
        assert LRUCache(4, thread_safe=True)._lock is not None

    def test_concurrent_mutation_preserves_the_bound(self):
        cache = LRUCache(32, thread_safe=True)
        errors = []

        def hammer(seed):
            rng = random.Random(seed)
            try:
                for _ in range(2000):
                    verb = rng.random()
                    key = rng.randrange(100)
                    if verb < 0.5:
                        cache[key] = key * 2
                    elif verb < 0.8:
                        value = cache.get(key)
                        assert value is None or value == key * 2
                    elif verb < 0.9:
                        cache.pop(key)
                    elif verb < 0.95:
                        cache.resize(rng.choice([8, 16, 32]))
                    else:
                        cache.clear()
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache) <= cache.capacity

    def test_keys_is_a_stable_snapshot(self):
        cache = LRUCache(8, thread_safe=True)
        for position in range(8):
            cache[position] = position
        snapshot = cache.keys()
        cache.clear()
        assert snapshot == list(range(8))


class TestConcurrentCorpusCache:
    def test_concurrent_keying_indexing_and_clearing(self, diabetes_corpus):
        """The server's real interleaving: admission threads computing
        corpus keys and curating while another thread clears/configures."""
        variant = [s.replace("SkinThickness", "Glucose") for s in diabetes_corpus]
        expected = {
            tuple(diabetes_corpus): corpus_key(diabetes_corpus),
            tuple(variant): corpus_key(variant),
        }
        clear_corpus_cache()
        errors = []

        def worker(seed):
            rng = random.Random(seed)
            try:
                for _ in range(60):
                    corpus = rng.choice([diabetes_corpus, variant])
                    verb = rng.random()
                    if verb < 0.45:
                        # keys are content addresses: stable across any
                        # interleaving of clears and rebuilds
                        assert corpus_key(corpus) == expected[tuple(corpus)]
                    elif verb < 0.85:
                        index = cached_index(corpus)
                        assert index.n_scripts == len(corpus)
                    elif verb < 0.95:
                        clear_corpus_cache()
                    else:
                        shared_retrieval_index()
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestRetrievalStorePin:
    def test_invariant_after_any_configure_clear_sequence(self, diabetes_corpus):
        """shared_retrieval_index().store is shared_store() — always."""
        rng = random.Random(1234)
        operations = [
            lambda: configure_shared_store(rng.choice([2, 64, None])),
            clear_corpus_cache,
            shared_retrieval_index,
            lambda: shared_store().get_or_parse(diabetes_corpus[0]),
            lambda: cached_index(diabetes_corpus),
        ]
        for _ in range(50):
            rng.choice(operations)()
            assert shared_retrieval_index().store is shared_store()

    def test_stale_pin_is_rebuilt_not_served(self):
        """A retrieval index built over an orphaned store is detected."""
        from repro.corpus import RetrievalIndex, ScriptStore
        from repro.corpus import cache as cache_mod

        stale = RetrievalIndex(store=ScriptStore())
        with cache_mod._LOCK:
            cache_mod._SHARED_RETRIEVAL = stale
        pool = shared_retrieval_index()
        assert pool is not stale
        assert pool.store is shared_store()

    def test_configure_resets_the_retrieval_pin(self, diabetes_corpus):
        pool = shared_retrieval_index()
        for script in diabetes_corpus:
            pool.add_script(script)
        configure_shared_store(64)
        fresh = shared_retrieval_index()
        assert fresh is not pool
        assert fresh.n_scripts == 0
        assert fresh.store is shared_store()
