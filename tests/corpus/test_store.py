"""Tests for the content-addressed script store."""

import pytest

from repro.corpus import ScriptStore, content_address
from repro.lang import lemmatize


class TestContentAddressing:
    def test_lemma_equivalent_scripts_share_a_record(self, diabetes_corpus):
        # scripts 0 and 1 differ only in the dataframe variable name, so
        # they lemmatize to the same canonical text
        store = ScriptStore()
        first = store.get_or_parse(diabetes_corpus[0])
        second = store.get_or_parse(diabetes_corpus[1])
        assert first is second
        assert store.counters.parses == 1
        assert store.counters.hits == 1

    def test_content_hash_is_sha1_of_lemmatized(self, diabetes_corpus):
        store = ScriptStore()
        record = store.get_or_parse(diabetes_corpus[0])
        assert record.content_hash == content_address(lemmatize(diabetes_corpus[0]))

    def test_byte_identical_readd_skips_lemmatize(self, diabetes_corpus):
        store = ScriptStore()
        store.get_or_parse(diabetes_corpus[0])
        assert store.counters.lemma_hits == 0
        store.get_or_parse(diabetes_corpus[0])
        assert store.counters.lemma_hits == 1

    def test_unparseable_script_counts_a_failure(self):
        store = ScriptStore()
        assert store.get_or_parse("this is ( not python") is None
        assert store.counters.failures == 1
        assert len(store) == 0

    def test_record_carries_count_contributions(self, diabetes_corpus):
        store = ScriptStore()
        record = store.get_or_parse(diabetes_corpus[0])
        assert record.n_statements == 5
        assert sum(record.onegram_counts.values()) > 0
        assert record.position_lists
        for values in record.position_lists.values():
            assert all(0.0 <= v <= 1.0 for v in values)


class TestBoundedStore:
    """The capped shared-store configuration (true-LRU + eviction counts)."""

    def _scripts(self, n):
        return [
            f"import pandas as pd\ndf = pd.read_csv('f{i}.csv')\ndf = df.fillna({i})\ndf"
            for i in range(n)
        ]

    def test_capacity_bounds_resident_records(self):
        store = ScriptStore(capacity=2)
        scripts = self._scripts(4)
        for script in scripts:
            store.get_or_parse(script)
        assert len(store) == 2
        assert store.counters.evictions == 2
        assert store.counters.snapshot()[-1] == 2

    def test_eviction_is_lru_and_lookups_refresh_recency(self):
        store = ScriptStore(capacity=2)
        a, b, c = self._scripts(3)
        ha = store.get_or_parse(a).content_hash
        store.get_or_parse(b)
        store.get_or_parse(a)  # refresh a; b is now LRU
        hc = store.get_or_parse(c).content_hash
        assert ha in store and hc in store
        assert len(store) == 2

    def test_evicted_record_is_reparsed_on_next_use(self):
        store = ScriptStore(capacity=1)
        a, b = self._scripts(2)
        store.get_or_parse(a)
        store.get_or_parse(b)  # evicts a's record
        parses = store.counters.parses
        record = store.get_or_parse(a)
        assert record is not None
        assert store.counters.parses == parses + 1

    def test_raw_content_hash_probe_is_recency_neutral(self):
        store = ScriptStore(capacity=2)
        a, b, c = self._scripts(3)
        ha = store.get_or_parse(a).content_hash
        hb = store.get_or_parse(b).content_hash
        from hashlib import sha1

        # peeking at a must NOT refresh it: b stays the most recent
        assert store.raw_content_hash(sha1(a.encode()).hexdigest()) == ha
        store.get_or_parse(c)
        assert hb in store
        assert ha not in store

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ScriptStore(capacity=0)
        ScriptStore(capacity=None)  # unbounded is fine

    def test_unbounded_store_never_evicts(self):
        store = ScriptStore()
        for script in self._scripts(50):
            store.get_or_parse(script)
        assert len(store) == 50
        assert store.counters.evictions == 0
