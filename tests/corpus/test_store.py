"""Tests for the content-addressed script store."""

from repro.corpus import ScriptStore, content_address
from repro.lang import lemmatize


class TestContentAddressing:
    def test_lemma_equivalent_scripts_share_a_record(self, diabetes_corpus):
        # scripts 0 and 1 differ only in the dataframe variable name, so
        # they lemmatize to the same canonical text
        store = ScriptStore()
        first = store.get_or_parse(diabetes_corpus[0])
        second = store.get_or_parse(diabetes_corpus[1])
        assert first is second
        assert store.counters.parses == 1
        assert store.counters.hits == 1

    def test_content_hash_is_sha1_of_lemmatized(self, diabetes_corpus):
        store = ScriptStore()
        record = store.get_or_parse(diabetes_corpus[0])
        assert record.content_hash == content_address(lemmatize(diabetes_corpus[0]))

    def test_byte_identical_readd_skips_lemmatize(self, diabetes_corpus):
        store = ScriptStore()
        store.get_or_parse(diabetes_corpus[0])
        assert store.counters.lemma_hits == 0
        store.get_or_parse(diabetes_corpus[0])
        assert store.counters.lemma_hits == 1

    def test_unparseable_script_counts_a_failure(self):
        store = ScriptStore()
        assert store.get_or_parse("this is ( not python") is None
        assert store.counters.failures == 1
        assert len(store) == 0

    def test_record_carries_count_contributions(self, diabetes_corpus):
        store = ScriptStore()
        record = store.get_or_parse(diabetes_corpus[0])
        assert record.n_statements == 5
        assert sum(record.onegram_counts.values()) > 0
        assert record.position_lists
        for values in record.position_lists.values():
            assert all(0.0 <= v <= 1.0 for v in values)
