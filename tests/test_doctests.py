"""Run the doctests embedded in public module docstrings."""

import doctest

import pytest

import repro.minipandas


@pytest.mark.parametrize("module", [repro.minipandas])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
