"""Tests for the script execution sandbox."""

import pytest

from repro.minipandas import DataFrame
from repro.sandbox import check_executes, run_script


GOOD = (
    "import pandas as pd\n"
    "df = pd.read_csv('diabetes.csv')\n"
    "df = df.fillna(df.mean())\n"
    "df = df[df['SkinThickness'] < 80]"
)


class TestRunScript:
    def test_happy_path(self, diabetes_dir):
        result = run_script(GOOD, data_dir=diabetes_dir)
        assert result.ok
        assert isinstance(result.output, DataFrame)
        assert len(result.output) > 0

    def test_pandas_import_is_minipandas(self, diabetes_dir):
        result = run_script(
            "import pandas as pd\nx = pd.DataFrame({'a': [1]})", data_dir=diabetes_dir
        )
        assert result.ok
        assert isinstance(result.namespace["x"], DataFrame)

    def test_numpy_allowed(self):
        result = run_script("import numpy as np\nx = np.arange(3).sum()")
        assert result.ok
        assert result.namespace["x"] == 3

    def test_disallowed_import_fails(self):
        result = run_script("import sklearn")
        assert not result.ok
        # classified sandbox error, still an ImportError for script code
        assert result.error_type == "SandboxImportError"
        assert isinstance(result.error, ImportError)
        assert "'sklearn'" in str(result.error)
        assert "pandas" in str(result.error)  # names the rejecting dialect

    def test_os_import_blocked(self):
        result = run_script("import os")
        assert not result.ok

    def test_syntax_error_reported(self):
        result = run_script("x ===")
        assert not result.ok
        assert result.error_type == "SyntaxError"

    def test_runtime_error_line_number(self, diabetes_dir):
        result = run_script(GOOD + "\ndf = df.drop('NoSuchColumn', axis=1)", data_dir=diabetes_dir)
        assert not result.ok
        assert result.error_type == "KeyError"
        assert result.error_line == 5

    def test_missing_csv_fails(self, tmp_path):
        result = run_script(GOOD, data_dir=str(tmp_path))
        assert not result.ok
        assert result.error_type == "FileNotFoundError"

    def test_path_resolved_by_basename(self, diabetes_dir):
        script = GOOD.replace("'diabetes.csv'", "'/data/project/diabetes.csv'")
        assert run_script(script, data_dir=diabetes_dir).ok

    def test_sampling_caps_rows(self, diabetes_dir):
        result = run_script(GOOD, data_dir=diabetes_dir, sample_rows=50)
        assert result.ok
        assert len(result.output) <= 50

    def test_sampling_deterministic(self, diabetes_dir):
        a = run_script(GOOD, data_dir=diabetes_dir, sample_rows=50).output
        b = run_script(GOOD, data_dir=diabetes_dir, sample_rows=50).output
        assert a.index.tolist() == b.index.tolist()

    def test_extra_globals_visible(self):
        result = run_script("y = injected + 1", extra_globals={"injected": 41})
        assert result.namespace["y"] == 42


class TestOutputSelection:
    def test_prefers_df_variable(self, diabetes_dir):
        script = GOOD + "\nother = pd.DataFrame({'z': [1]})"
        result = run_script(script, data_dir=diabetes_dir)
        assert "SkinThickness" in result.output.columns

    def test_falls_back_to_last_assigned(self, diabetes_dir):
        script = (
            "import pandas as pd\n"
            "train = pd.read_csv('diabetes.csv')\n"
            "result = train.dropna()"
        )
        output = run_script(script, data_dir=diabetes_dir).output
        assert output is not None
        # `result` is the last assigned DataFrame
        assert len(output) <= 240

    def test_no_dataframe_output_is_none(self):
        result = run_script("x = 1")
        assert result.ok
        assert result.output is None


class TestCheckExecutes:
    def test_good_script(self, diabetes_dir):
        assert check_executes(GOOD, data_dir=diabetes_dir)

    def test_bad_script(self, diabetes_dir):
        assert not check_executes(GOOD + "\ndf = df['nope']", data_dir=diabetes_dir)

    def test_script_without_table_output_fails(self):
        assert not check_executes("x = 1")

    def test_empty_filter_still_executes(self, diabetes_dir):
        assert check_executes(GOOD + "\ndf = df[df['Age'] > 1000]", data_dir=diabetes_dir)


class TestFileGuard:
    def test_write_mode_blocked(self, diabetes_dir):
        result = run_script("f = open('out.txt', 'w')", data_dir=diabetes_dir)
        assert not result.ok
        assert result.error_type == "PermissionError"

    def test_append_mode_blocked(self, diabetes_dir):
        result = run_script("f = open('out.txt', 'a')", data_dir=diabetes_dir)
        assert not result.ok

    def test_read_outside_data_dir_blocked(self, diabetes_dir):
        result = run_script("f = open('/etc/hostname')", data_dir=diabetes_dir)
        assert not result.ok
        assert result.error_type == "PermissionError"

    def test_parent_traversal_blocked(self, diabetes_dir):
        result = run_script(
            "f = open('diabetes.csv/../../etc/passwd')", data_dir=diabetes_dir
        )
        assert not result.ok
        assert result.error_type == "PermissionError"

    def test_absolute_path_outside_blocked(self, diabetes_dir):
        result = run_script("f = open('/etc/passwd')", data_dir=diabetes_dir)
        assert not result.ok
        assert result.error_type == "PermissionError"

    def test_prefix_sibling_not_confused_with_root(self, tmp_path):
        """/data/dir-evil must not pass a prefix check rooted at /data/dir."""
        root = tmp_path / "data"
        root.mkdir()
        sibling = tmp_path / "data-evil"
        sibling.mkdir()
        (sibling / "secret.txt").write_text("secret")
        result = run_script(
            f"f = open({str(sibling / 'secret.txt')!r})", data_dir=str(root)
        )
        assert not result.ok
        assert result.error_type == "PermissionError"

    def test_symlink_escape_blocked(self, tmp_path):
        """A symlink inside the data dir must not read outside it."""
        root = tmp_path / "data"
        root.mkdir()
        outside = tmp_path / "outside.txt"
        outside.write_text("secret")
        import os
        os.symlink(str(outside), str(root / "sneaky.txt"))
        result = run_script(
            f"f = open({str(root / 'sneaky.txt')!r})", data_dir=str(root)
        )
        assert not result.ok
        assert result.error_type == "PermissionError"

    def test_read_inside_data_dir_allowed(self, diabetes_dir):
        script = (
            "import pandas as pd\n"
            "with open('diabetes.csv') as f:\n"
            "    header = f.readline()"
        )
        import os
        cwd = os.getcwd()
        try:
            os.chdir(diabetes_dir)
            result = run_script(script, data_dir=diabetes_dir)
        finally:
            os.chdir(cwd)
        assert result.ok
        assert "SkinThickness" in result.namespace["header"]


class TestGuardedImport:
    def test_numpy_submodule_import(self):
        result = run_script(
            "import numpy.linalg\nx = float(numpy.linalg.norm([3.0, 4.0]))"
        )
        assert result.ok
        assert result.namespace["x"] == 5.0

    def test_pandas_submodule_import_binds_proxy(self, diabetes_dir):
        """``import pandas.api`` resolves to the sandbox pandas proxy —
        the root binding still reads CSVs through the resolver."""
        result = run_script(
            "import pandas.api\ndf = pandas.read_csv('diabetes.csv')",
            data_dir=diabetes_dir,
        )
        assert result.ok
        assert "SkinThickness" in result.output.columns

    def test_disallowed_submodule_blocked(self):
        result = run_script("import os.path")
        assert not result.ok
        assert result.error_type == "SandboxImportError"
        assert "'os.path'" in str(result.error)  # names the full module

    def test_from_import_of_allowed_module(self):
        result = run_script("from math import sqrt\nx = sqrt(9)")
        assert result.ok
        assert result.namespace["x"] == 3.0


class TestErrorLines:
    def test_error_line_in_middle_of_script(self, diabetes_dir):
        script = (
            "import pandas as pd\n"
            "df = pd.read_csv('diabetes.csv')\n"
            "df = df.drop('NoSuchColumn', axis=1)\n"
            "df = df.fillna(df.mean())"
        )
        result = run_script(script, data_dir=diabetes_dir)
        assert not result.ok
        assert result.error_line == 3

    def test_error_line_on_first_statement(self):
        result = run_script("df = undefined_name\nx = 1")
        assert not result.ok
        assert result.error_type == "NameError"
        assert result.error_line == 1

    def test_syntax_error_line(self):
        result = run_script("x = 1\ny = (")
        assert not result.ok
        assert result.error_type == "SyntaxError"
        assert result.error_line == 2
