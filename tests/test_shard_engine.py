"""Tests for the persistent sharded worker engine (repro.sandbox.shards).

Covers the engine's three contracts: deterministic bit-identical results
for any worker count (including under mid-batch worker respawn), shard
affinity with load-capped deterministic placement, and O(delta)
content-addressed source shipping with parent/worker mirrors that evict
in lockstep.  The atexit regression test checks that persistent workers
never outlive the parent interpreter.
"""

import subprocess
import sys
import textwrap

import pytest

from repro._lru import LRUCache
from repro.sandbox import (
    BatchReport,
    ShardEngine,
    ShardTask,
    check_executes_batch,
    kill_worker_pool,
)
from repro.sandbox.faults import fault_snippet
from repro.sandbox.shards import (
    _apply_line_ops,
    _encode_sources,
    _line_ops,
    get_shard_engine,
    kill_shard_engine,
    prefix_affinity,
    sha1_text,
)

BUDGET_S = 0.2

GOOD = "import pandas as pd\ndf = pd.DataFrame({'a': [1, 2]})"


def _script(suffix):
    return GOOD + "\n" + suffix


SCRIPTS = [
    GOOD,
    _script("df['b'] = df['a'] * 2"),
    _script("df = df.dropna()"),
    _script("df = df[df['a'] > 0]"),
    _script("df['c'] = 0"),
    _script("df = df.rename(columns={'a': 'x'})"),
    "import pandas as pd\nraise RuntimeError('boom')\ndf = 1",
    _script("df['d'] = df['a'] + 1"),
]


@pytest.fixture(autouse=True)
def _fresh_engine():
    yield
    kill_worker_pool()


def _exec_tasks(sources, base):
    base_sha = sha1_text(base)
    tasks = []
    for source in sources:
        sha = sha1_text(source)
        ship = (
            ((sha, source, None, None),)
            if sha == base_sha
            else ((base_sha, base, None, None), (sha, source, base_sha, base))
        )
        tasks.append(
            ShardTask(
                kind="exec_check",
                payload={
                    "source_sha": sha,
                    "data_dir": None,
                    "sample_rows": 100,
                },
                sources=ship,
                affinity=prefix_affinity(source, base),
            )
        )
    return tasks


class TestLineOps:
    def test_roundtrip(self):
        base = GOOD.split("\n")
        for script in SCRIPTS:
            lines = script.split("\n")
            assert _apply_line_ops(base, _line_ops(base, lines)) == lines

    def test_delta_is_small_for_splices(self):
        base = ["line%d" % i for i in range(100)]
        spliced = base[:50] + ["inserted"] + base[50:]
        ops = _line_ops(base, spliced)
        assert sum(len(r) for _, _, r in ops) == 1


class TestSourceShipping:
    def test_second_shipment_is_a_ref(self):
        mirror = LRUCache(8)
        ship = ((sha1_text(GOOD), GOOD, None, None),)
        first, first_bytes = _encode_sources(mirror, ship, 8)
        second, second_bytes = _encode_sources(mirror, ship, 8)
        assert first[0][0] == "full" and first_bytes == len(GOOD)
        assert second == [("ref", sha1_text(GOOD))] and second_bytes == 0

    def test_delta_against_resident_base(self):
        mirror = LRUCache(8)
        _encode_sources(mirror, ((sha1_text(GOOD), GOOD, None, None),), 8)
        candidate = _script("df['z'] = 9")
        instructions, shipped = _encode_sources(
            mirror,
            ((sha1_text(candidate), candidate, sha1_text(GOOD), GOOD),),
            8,
        )
        assert instructions[0][0] == "delta"
        assert shipped < len(candidate)

    def test_eviction_falls_back_to_full(self):
        mirror = LRUCache(1)
        _encode_sources(mirror, ((sha1_text(GOOD), GOOD, None, None),), 1)
        other = _script("df['q'] = 1")
        # shipping `other` evicts GOOD from the capacity-1 mirror...
        _encode_sources(
            mirror, ((sha1_text(other), other, sha1_text(GOOD), GOOD),), 1
        )
        # ...so GOOD must re-ship full, never dangle as a ref
        instructions, _ = _encode_sources(
            mirror, ((sha1_text(GOOD), GOOD, None, None),), 1
        )
        assert instructions[0][0] == "full"


class TestAffinity:
    def test_affinity_is_prefix_keyed(self):
        a = prefix_affinity(_script("df['b'] = 1"), GOOD)
        b = prefix_affinity(_script("df['c'] = 2"), GOOD)
        assert a == b  # same shared prefix -> same shard
        assert prefix_affinity("x = 1", GOOD) != a

    def test_assignment_is_capped_and_counts_hits(self):
        engine = get_shard_engine(2)
        tasks = _exec_tasks(SCRIPTS, GOOD)
        report = BatchReport()
        assignment = engine._assign(tasks, report)
        total = sum(len(ids) for ids in assignment)
        assert total == len(tasks)
        cap = -(-len(tasks) // 2)
        assert all(len(ids) <= cap for ids in assignment)
        assert report.shard_hits + report.shard_migrations <= len(tasks)
        assert report.shard_hits > 0

    def test_assignment_is_deterministic(self):
        engine = get_shard_engine(4)
        tasks = _exec_tasks(SCRIPTS, GOOD)
        first = engine._assign(tasks, None)
        second = engine._assign(tasks, None)
        assert first == second


class TestDeterminism:
    """Results are bit-identical and identically ordered for any worker
    count, and under mid-batch worker respawn."""

    def test_verdicts_identical_across_worker_counts(self):
        expected = check_executes_batch(SCRIPTS, sample_rows=100, workers=1)
        for workers in (2, 4):
            kill_worker_pool()
            got = check_executes_batch(SCRIPTS, sample_rows=100, workers=workers)
            assert got == expected, f"workers={workers}"

    def test_run_batch_outcomes_ordered_across_worker_counts(self):
        baselines = None
        for workers in (1, 2, 4):
            kill_shard_engine()
            engine = get_shard_engine(workers)
            outcomes, respawns = engine.run_batch(
                _exec_tasks(SCRIPTS, GOOD), report=BatchReport()
            )
            assert respawns == 0
            values = [outcome[1][0] for outcome in outcomes]
            if baselines is None:
                baselines = values
            else:
                assert values == baselines, f"workers={workers}"

    def test_verdicts_identical_under_respawn(self):
        # a watchdog-defeating hang forces the parent to kill and respawn
        # the shard mid-batch; every other verdict must be unaffected
        stubborn = fault_snippet("stubborn_hang") + "\ndf = 1"
        wave = SCRIPTS[:3] + [stubborn] + SCRIPTS[3:]
        expected = [True, True, True, False, True, True, True, False, True]
        report = BatchReport()
        verdicts = check_executes_batch(
            wave,
            sample_rows=100,
            workers=2,
            timeout_s=BUDGET_S,
            respawn_limit=2,
            report=report,
        )
        assert verdicts == expected
        assert report.respawns >= 1

    def test_resident_state_survives_across_batches(self):
        engine = get_shard_engine(2)
        report = BatchReport()
        engine.run_batch(_exec_tasks(SCRIPTS, GOOD), report=report)
        first_bytes = report.bytes_shipped
        again = BatchReport()
        outcomes, _ = engine.run_batch(_exec_tasks(SCRIPTS, GOOD), report=again)
        # second batch finds every source resident: pure refs, zero bytes
        assert again.bytes_shipped == 0
        assert first_bytes > 0
        assert all(outcome[0] == "ok" for outcome in outcomes)


class TestEngineLifecycle:
    def test_worker_count_change_rebuilds(self):
        first = get_shard_engine(2)
        second = get_shard_engine(3)
        assert second is not first
        assert second.workers == 3
        assert not first.alive()

    def test_kill_is_idempotent(self):
        engine = get_shard_engine(2)
        pids = engine.worker_pids()
        assert all(pid is not None for pid in pids)
        kill_shard_engine()
        kill_shard_engine()
        assert not engine.alive()

    def test_workers_are_daemonic(self):
        engine = get_shard_engine(2)
        assert all(shard.process.daemon for shard in engine._shards)


class TestAtexitCleanup:
    def test_pool_is_gone_after_interpreter_shutdown(self, tmp_path):
        """Regression: persistent workers must not outlive the parent.

        A child interpreter spins up the engine, prints its worker PIDs,
        and exits *without* calling kill_worker_pool() — the registered
        atexit hook (plus daemonic workers as backstop) must reap them.
        """
        program = textwrap.dedent(
            """
            from repro.sandbox import check_executes_batch
            from repro.sandbox.runner import get_worker_pool

            check_executes_batch(
                ["df = 1", "df = 2"], workers=2, sample_rows=10
            )
            print(" ".join(str(p) for p in get_worker_pool(2).worker_pids()))
            """
        )
        out = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True,
            text=True,
            timeout=60,
            check=True,
        )
        pids = [int(p) for p in out.stdout.split()]
        assert pids
        import os

        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # signal 0: existence probe only
