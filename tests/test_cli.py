"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def corpus_dir(tmp_path, diabetes_corpus):
    d = tmp_path / "corpus"
    d.mkdir()
    for position, script in enumerate(diabetes_corpus):
        (d / f"peer_{position}.py").write_text(script + "\n")
    return str(d)


@pytest.fixture()
def script_path(tmp_path, alex_script):
    path = tmp_path / "user.py"
    path.write_text(alex_script + "\n")
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_standardize_args(self):
        args = build_parser().parse_args(
            ["standardize", "--script", "s.py", "--corpus-dir", "c/",
             "--data-dir", "d/", "--tau-j", "0.8", "--seq", "4"]
        )
        assert args.command == "standardize"
        assert args.tau_j == 0.8
        assert args.seq == 4

    def test_build_workload_validates_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["build-workload", "bogus", "--out", "x"])


class TestScore:
    def test_prints_re(self, corpus_dir, script_path, capsys):
        code = main(["score", "--script", script_path, "--corpus-dir", corpus_dir])
        assert code == 0
        out = capsys.readouterr().out.strip()
        assert float(out) > 0

    def test_empty_corpus_dir_exits(self, tmp_path, script_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit):
            main(["score", "--script", script_path, "--corpus-dir", str(empty)])


class TestStandardize:
    def test_end_to_end(self, corpus_dir, script_path, diabetes_dir, tmp_path, capsys):
        out_path = str(tmp_path / "out.py")
        code = main(
            ["standardize", "--script", script_path, "--corpus-dir", corpus_dir,
             "--data-dir", diabetes_dir, "--tau-j", "0.5",
             "--seq", "6", "--beam-size", "2", "--sample-rows", "120",
             "--output", out_path]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "read_csv" in printed
        assert os.path.exists(out_path)
        with open(out_path) as handle:
            assert "import pandas as pd" in handle.read()

    def test_broken_input_fails_cleanly(self, corpus_dir, tmp_path, diabetes_dir, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import pandas as pd\ndf = pd.read_csv('nope.csv')\n")
        code = main(
            ["standardize", "--script", str(bad), "--corpus-dir", corpus_dir,
             "--data-dir", diabetes_dir, "--seq", "2"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestExplain:
    def test_prints_rationales(self, corpus_dir, script_path, diabetes_dir, capsys):
        code = main(
            ["explain", "--script", script_path, "--corpus-dir", corpus_dir,
             "--data-dir", diabetes_dir, "--tau-j", "0.5",
             "--seq", "6", "--beam-size", "2", "--sample-rows", "120"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "corpus prevalence" in out or "already standard" in out


class TestBuildWorkload:
    def test_materializes_competition(self, tmp_path, capsys):
        code = main(
            ["build-workload", "medical", "--out", str(tmp_path),
             "--n-scripts", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "train.csv" in out
        scripts_dir = tmp_path / "medical" / "scripts"
        assert len(list(scripts_dir.glob("*.py"))) == 4


class TestDetectLeakage:
    def test_flags_removed_steps(self, corpus_dir, tmp_path, diabetes_dir, capsys):
        leaky = tmp_path / "leaky.py"
        leaky.write_text(
            "import pandas as pd\n"
            "df = pd.read_csv('diabetes.csv')\n"
            "df = df.fillna(df.mean())\n"
            "df['Outcome_copy'] = df['Outcome']\n"
        )
        code = main(
            ["detect-leakage", "--script", str(leaky), "--corpus-dir", corpus_dir,
             "--data-dir", diabetes_dir, "--tau-j", "0.5",
             "--seq", "6", "--beam-size", "2", "--sample-rows", "120"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Outcome_copy" in out or "no out-of-the-ordinary" in out


class TestCurate:
    def test_writes_vocabulary_json(self, corpus_dir, tmp_path, capsys):
        out = str(tmp_path / "vocab.json")
        code = main(["curate", "--corpus-dir", corpus_dir, "--out", out])
        assert code == 0
        assert "curated 3 scripts" in capsys.readouterr().out

        from repro.lang import load_vocabulary

        vocabulary = load_vocabulary(out)
        assert vocabulary.n_scripts == 3
        assert vocabulary.total_edges > 0


class TestCorpusWarnings:
    def test_duplicate_scripts_skipped_with_warning(
        self, corpus_dir, script_path, capsys
    ):
        import shutil

        shutil.copy(
            os.path.join(corpus_dir, "peer_0.py"),
            os.path.join(corpus_dir, "zz_copy.py"),
        )
        code = main(["score", "--script", script_path, "--corpus-dir", corpus_dir])
        assert code == 0
        err = capsys.readouterr().err
        assert "byte-identical to" in err
        assert "zz_copy.py" in err
        assert "double-count" in err

    def test_broken_notebook_names_the_file(self, corpus_dir, script_path, capsys):
        with open(os.path.join(corpus_dir, "corrupt.ipynb"), "w") as handle:
            handle.write("{not json")
        code = main(["score", "--script", script_path, "--corpus-dir", corpus_dir])
        assert code == 0  # one corrupt notebook does not abort the load
        err = capsys.readouterr().err
        assert "warning: skipping notebook" in err
        assert "corrupt.ipynb" in err


class TestIndexCommands:
    def test_build_then_stats(self, corpus_dir, tmp_path, capsys):
        snapshot = str(tmp_path / "index.json")
        assert main(["index", "build", "--corpus-dir", corpus_dir,
                     "--out", snapshot]) == 0
        assert "indexed 3 scripts" in capsys.readouterr().out
        assert main(["index", "stats", "--index", snapshot, "--audit"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical to a cold rebuild" in out
        assert "scripts: 3" in out

    def test_update_reparses_only_changes(self, corpus_dir, tmp_path,
                                          alex_script, capsys):
        snapshot = str(tmp_path / "index.json")
        main(["index", "build", "--corpus-dir", corpus_dir, "--out", snapshot])
        capsys.readouterr()
        assert main(["index", "update", "--index", snapshot, "--audit"]) == 0
        assert "reparsed=0" in capsys.readouterr().out
        with open(os.path.join(corpus_dir, "peer_1.py"), "w") as handle:
            handle.write(alex_script + "\n")
        assert main(["index", "update", "--index", snapshot, "--audit"]) == 0
        out = capsys.readouterr().out
        assert "changed=1" in out
        assert "reparsed=1" in out

    def test_build_empty_dir_exits(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit):
            main(["index", "build", "--corpus-dir", str(empty),
                  "--out", str(tmp_path / "index.json")])

    def test_score_accepts_index(self, corpus_dir, script_path, tmp_path, capsys):
        snapshot = str(tmp_path / "index.json")
        main(["index", "build", "--corpus-dir", corpus_dir, "--out", snapshot])
        capsys.readouterr()
        code = main(["score", "--script", script_path, "--index", snapshot])
        assert code == 0
        with_index = float(capsys.readouterr().out.strip())
        main(["score", "--script", script_path, "--corpus-dir", corpus_dir])
        without_index = float(capsys.readouterr().out.strip())
        assert with_index == without_index

    def test_score_requires_a_corpus_source(self, script_path):
        with pytest.raises(SystemExit, match="corpus-dir or --index"):
            main(["score", "--script", script_path])


class TestNotebookCorpus:
    def test_corpus_dir_accepts_notebooks(self, tmp_path, diabetes_corpus, alex_script, capsys):
        import json

        d = tmp_path / "nbcorpus"
        d.mkdir()
        for position, script in enumerate(diabetes_corpus):
            nb = {
                "cells": [
                    {"cell_type": "code", "source": script.splitlines(keepends=True)}
                ]
            }
            (d / f"peer_{position}.ipynb").write_text(json.dumps(nb))
        user = tmp_path / "user.py"
        user.write_text(alex_script + "\n")
        code = main(["score", "--script", str(user), "--corpus-dir", str(d)])
        assert code == 0
        assert float(capsys.readouterr().out.strip()) > 0


class TestReadCorpusOrdering:
    def test_sorted_by_filename_regardless_of_creation_order(self, tmp_path):
        """Corpus order must be stable across filesystems: sorted by name."""
        import random

        from repro.cli import _read_corpus

        d = tmp_path / "shuffled"
        d.mkdir()
        names = [f"peer_{i:02d}.py" for i in range(8)]
        shuffled = list(names)
        random.Random(3).shuffle(shuffled)
        for name in shuffled:  # create in shuffled order
            (d / name).write_text(
                f"import pandas as pd\ndf = pd.read_csv('{name}.csv')\ndf\n"
            )
        scripts = _read_corpus(str(d))
        expected = [
            f"import pandas as pd\ndf = pd.read_csv('{name}.csv')\ndf\n"
            for name in sorted(names)
        ]
        assert scripts == expected


class TestIndexRetrieveCommand:
    def test_prints_ranked_hits(self, corpus_dir, script_path, capsys):
        code = main(
            [
                "index", "retrieve",
                "--corpus-dir", corpus_dir,
                "--script", script_path,
                "-k", "2",
                "--verify",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert lines[0].startswith("pool [pandas]:")
        assert "[audited]" in lines[0]
        assert len(lines) == 3  # header + 2 hits
        assert lines[1].lstrip().startswith("1 ")

    def test_persists_and_reloads_pool_snapshot(
        self, corpus_dir, script_path, tmp_path, capsys
    ):
        snapshot = str(tmp_path / "pool.retr.json")
        assert (
            main(
                [
                    "index", "retrieve",
                    "--corpus-dir", corpus_dir,
                    "--script", script_path,
                    "-k", "2",
                    "--out", snapshot,
                ]
            )
            == 0
        )
        first = capsys.readouterr().out
        assert (
            main(["index", "retrieve", "--index", snapshot,
                  "--script", script_path, "-k", "2"])
            == 0
        )
        second = capsys.readouterr().out
        hits = lambda text: [  # noqa: E731
            line for line in text.splitlines() if line.lstrip()[:1].isdigit()
        ]
        assert hits(first) == hits(second)

    def test_requires_a_pool(self, script_path):
        with pytest.raises(SystemExit):
            main(["index", "retrieve", "--script", script_path])


class TestRetrieveKFlag:
    def test_score_with_retrieve_k_matches_plain_corpus(
        self, tmp_path, script_path, diabetes_corpus, capsys
    ):
        # a duplicate-free pool: retrieval works over unique records, so
        # parity with the plain directory corpus needs distinct lemmas
        # (diabetes peers 0 and 1 lemmatize identically)
        d = tmp_path / "unique"
        d.mkdir()
        for position, script in enumerate(diabetes_corpus[1:]):
            (d / f"peer_{position}.py").write_text(script + "\n")
        corpus_dir = str(d)
        assert main(["score", "--script", script_path, "--corpus-dir", corpus_dir]) == 0
        plain = capsys.readouterr().out
        assert (
            main(
                [
                    "score", "--script", script_path, "--corpus-dir", corpus_dir,
                    "--retrieve-k", "3", "--verify-retrieval",
                ]
            )
            == 0
        )
        retrieved = capsys.readouterr().out
        # k >= pool size: the retrieved corpus is the whole pool, and the
        # score is identical to curating the directory directly
        assert retrieved == plain

    def test_standardize_with_retrieve_k(
        self, corpus_dir, script_path, diabetes_dir, capsys
    ):
        code = main(
            [
                "standardize",
                "--script", script_path,
                "--corpus-dir", corpus_dir,
                "--data-dir", diabetes_dir,
                "--retrieve-k", "2",
            ]
        )
        assert code == 0
        assert "df" in capsys.readouterr().out
