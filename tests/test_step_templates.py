"""Every step template must execute on its competition's dataset.

The slot pools and rare pools are the raw material for corpus generation
and for LucidScript's add transformations — a template that cannot run is
dead vocabulary.  This suite executes each template (preceded by the
standard load) against freshly generated data.

Rare steps are allowed to *conditionally* fail only when they reference a
column another step may have dropped; standalone (right after load) they
must all succeed.
"""

import os

import numpy as np
import pytest

from repro.sandbox import run_script
from repro.workloads import RARE_POOLS, SLOT_POOLS, SPECS

_DATA_CACHE = {}


def data_dir_for(name: str, tmp_root: str = "/tmp/repro-step-tests") -> str:
    if name not in _DATA_CACHE:
        spec = SPECS[name]
        rng = np.random.default_rng(0)
        directory = os.path.join(tmp_root, name)
        os.makedirs(directory, exist_ok=True)
        frame = spec.generator(rng, min(spec.n_rows, 2000))
        frame.to_csv(os.path.join(directory, spec.data_file))
        _DATA_CACHE[name] = directory
    return _DATA_CACHE[name]


def _all_slot_steps():
    for name, slots in SLOT_POOLS.items():
        for slot in slots:
            for source, _prob in slot.alternatives:
                yield pytest.param(name, source, id=f"{name}:{source[:48]}")


def _all_rare_steps():
    for name, steps in RARE_POOLS.items():
        for source in steps:
            yield pytest.param(name, source, id=f"{name}:rare:{source[:44]}")


HEADER = "import pandas as pd\ndf = pd.read_csv('train.csv')\n"


@pytest.mark.parametrize("competition,step", list(_all_slot_steps()))
def test_slot_step_executes(competition, step):
    script = HEADER + step
    result = run_script(script, data_dir=data_dir_for(competition), sample_rows=300)
    assert result.ok, f"{result.error!r} for step {step!r}"
    assert result.output is not None


@pytest.mark.parametrize("competition,step", list(_all_rare_steps()))
def test_rare_step_executes_standalone(competition, step):
    script = HEADER + step
    result = run_script(script, data_dir=data_dir_for(competition), sample_rows=300)
    assert result.ok, f"{result.error!r} for step {step!r}"


@pytest.mark.parametrize("competition", sorted(SLOT_POOLS))
def test_full_slot_sequence_executes(competition):
    """All majority alternatives combined, in slot order, must compose."""
    steps = [
        max(slot.alternatives, key=lambda alt: alt[1])[0]
        for slot in SLOT_POOLS[competition]
    ]
    script = HEADER + "\n".join(steps)
    result = run_script(script, data_dir=data_dir_for(competition), sample_rows=300)
    assert result.ok, f"{result.error!r}\n{script}"
    assert len(result.output) > 0


@pytest.mark.parametrize("competition", sorted(SLOT_POOLS))
def test_target_survives_majority_pipeline(competition):
    """The prediction target must survive the majority preparation steps
    (otherwise the y/X split tail could never execute)."""
    spec = SPECS[competition]
    steps = [
        max(slot.alternatives, key=lambda alt: alt[1])[0]
        for slot in SLOT_POOLS[competition]
    ]
    script = (
        HEADER
        + "\n".join(steps)
        + f"\ny = df['{spec.target}']\nX = df.drop('{spec.target}', axis=1)"
    )
    result = run_script(script, data_dir=data_dir_for(competition), sample_rows=300)
    assert result.ok, f"{result.error!r}\n{script}"
