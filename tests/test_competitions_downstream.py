"""Downstream evaluability of every competition (small builds).

The Δ_M intent measure requires that each competition's emitted datasets
support a downstream model.  These tests run the majority pipeline of
every competition and check the model substrate produces a sane score.
"""

import os

import numpy as np
import pytest

from repro.lang import lemmatize
from repro.ml import evaluate_downstream
from repro.sandbox import run_script
from repro.workloads import SLOT_POOLS, SPECS

_DIRS = {}


def small_build(name, tmp_root="/tmp/repro-downstream-tests"):
    if name not in _DIRS:
        spec = SPECS[name]
        rng = np.random.default_rng(1)
        directory = os.path.join(tmp_root, name)
        os.makedirs(directory, exist_ok=True)
        spec.generator(rng, min(spec.n_rows, 1500)).to_csv(
            os.path.join(directory, spec.data_file)
        )
        _DIRS[name] = directory
    return _DIRS[name]


def majority_script(name):
    steps = [
        max(slot.alternatives, key=lambda alt: alt[1])[0]
        for slot in SLOT_POOLS[name]
    ]
    return (
        "import pandas as pd\ndf = pd.read_csv('train.csv')\n" + "\n".join(steps)
    )


@pytest.mark.parametrize("name", sorted(SPECS))
def test_majority_pipeline_supports_downstream_model(name):
    spec = SPECS[name]
    result = run_script(majority_script(name), data_dir=small_build(name),
                        sample_rows=800)
    assert result.ok, result.error
    outcome = evaluate_downstream(result.output, spec.target, task=spec.task)
    assert outcome.task == spec.task
    if spec.task == "classification":
        assert outcome.accuracy > 0.55  # clearly above coin flip
    else:
        assert 0.0 <= outcome.accuracy <= 1.0  # clipped R^2


@pytest.mark.parametrize("name", sorted(SPECS))
def test_raw_data_also_evaluable(name):
    """Even without preparation, the intent oracle must not crash —
    the user's input script may do very little."""
    spec = SPECS[name]
    script = "import pandas as pd\ndf = pd.read_csv('train.csv')"
    result = run_script(script, data_dir=small_build(name), sample_rows=800)
    outcome = evaluate_downstream(result.output, spec.target, task=spec.task)
    assert 0.0 <= outcome.accuracy <= 1.0


@pytest.mark.parametrize("name", sorted(SPECS))
def test_preparation_does_not_collapse_accuracy(name):
    """The majority pipeline must not make the task unlearnable."""
    spec = SPECS[name]
    raw = run_script(
        "import pandas as pd\ndf = pd.read_csv('train.csv')",
        data_dir=small_build(name), sample_rows=800,
    ).output
    prepared = run_script(
        majority_script(name), data_dir=small_build(name), sample_rows=800
    ).output
    acc_raw = evaluate_downstream(raw, spec.target, task=spec.task).accuracy
    acc_prepared = evaluate_downstream(
        prepared, spec.target, task=spec.task
    ).accuracy
    assert acc_prepared >= acc_raw - 0.15
