"""Differential tests for the columnar kernels and the kernel audit.

The contract under test is bit-identity: every result the single-pass
columnar kernels produce must match the naive row-at-a-time references in
``repro.minipandas._naive`` exactly — same missingness flavour, same cell
types, same labels — across randomized NA-heavy, duplicate-row,
mixed-dtype, empty, and unhashable-cell frames.  Running each op inside
``kernel_audit(True)`` makes the audit machinery itself perform the
comparison and raise ``KernelMismatchError`` on any divergence, so these
tests double as the audit's own regression suite.
"""

import random

import pytest

import repro.minipandas as pd
from repro.minipandas import (
    NA,
    DataFrame,
    KernelMismatchError,
    Series,
    kernel_audit,
)
from repro.minipandas import _naive as naive
from repro.minipandas import kernels


# ---------------------------------------------------------------- generators
def random_frame(rng, shape=None, na_rate=0.25, dup_rows=False, unhashable=False):
    """A mixed-dtype frame: ints, floats, strings (including the literal
    "__na__" the old sentinel collided with), bools, NA under both
    flavours (None and NaN), optional duplicated rows and list cells."""
    if shape is None:
        n_rows = rng.randrange(0, 12)
        n_cols = rng.randrange(1, 5)
    else:
        n_rows, n_cols = shape
    pools = [
        lambda: rng.randrange(0, 4),
        lambda: rng.choice([0.5, -1.25, 3.0, 7.5]),
        lambda: rng.choice(["x", "y", "__na__", ""]),
        lambda: rng.choice([True, False]),
    ]
    if unhashable:
        pools.append(lambda: rng.choice([[1], [2], [1, 2]]))
    data = {}
    for c in range(n_cols):
        pool = rng.choice(pools)
        column = []
        for _ in range(n_rows):
            if rng.random() < na_rate:
                column.append(rng.choice([None, NA]))
            else:
                column.append(pool())
        data[f"c{c}"] = column
    frame = DataFrame(data)
    if dup_rows and n_rows > 1:
        positions = [rng.randrange(0, n_rows) for _ in range(n_rows)]
        frame = frame.take(positions).reset_index()
    return frame


def seeds():
    return pytest.mark.parametrize("seed", range(12))


# ------------------------------------------------------- differential sweeps
class TestKernelNaiveParity:
    @seeds()
    def test_take_and_masks(self, seed):
        rng = random.Random(seed)
        frame = random_frame(rng, dup_rows=seed % 2 == 0, unhashable=seed % 3 == 0)
        with kernel_audit():
            positions = [
                p for p in range(len(frame)) if rng.random() < 0.6
            ]
            frame.take(positions)
            frame.head(3)
            if frame.columns and len(frame):
                first = frame.columns[0]
                mask = frame[first].notnull()
                frame[mask]
                frame[[bool(rng.randrange(2)) for _ in range(len(frame))]]

    @seeds()
    def test_fillna(self, seed):
        rng = random.Random(seed)
        frame = random_frame(rng, na_rate=0.5)
        with kernel_audit():
            frame.fillna(0)
            frame.fillna("z")
            if frame.columns:
                frame.fillna({frame.columns[0]: -1})
                frame.fillna(Series([9.5], index=[frame.columns[-1]]))

    @seeds()
    def test_dropna(self, seed):
        rng = random.Random(seed)
        frame = random_frame(rng, na_rate=0.5, dup_rows=seed % 2 == 1)
        with kernel_audit():
            frame.dropna()
            frame.dropna(how="all")
            frame.dropna(thresh=1)
            frame.dropna(axis=1)
            frame.dropna(axis=1, how="all")
            if frame.columns:
                frame.dropna(subset=[frame.columns[0]])

    @seeds()
    def test_duplicated(self, seed):
        rng = random.Random(seed)
        frame = random_frame(
            rng, na_rate=0.4, dup_rows=True, unhashable=seed % 2 == 0
        )
        with kernel_audit():
            frame.duplicated()
            frame.drop_duplicates()
            if frame.columns:
                frame.duplicated(subset=[frame.columns[0]])

    @seeds()
    def test_get_dummies(self, seed):
        rng = random.Random(seed)
        frame = random_frame(rng, na_rate=0.3, dup_rows=seed % 2 == 0)
        with kernel_audit():
            pd.get_dummies(frame)
            pd.get_dummies(frame, drop_first=True)
            pd.get_dummies(frame, prefix="P", dtype=float)

    @seeds()
    def test_groupby_agg(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(1, 16)
        frame = DataFrame(
            {
                "k": [rng.choice(["a", "b", None]) for _ in range(n)],
                "k2": [rng.randrange(0, 2) for _ in range(n)],
                "v": [
                    NA if rng.random() < 0.3 else rng.randrange(0, 9)
                    for _ in range(n)
                ],
            }
        )
        with kernel_audit():
            frame.groupby("k").agg("mean")
            frame.groupby(["k", "k2"]).sum()
            frame.groupby("k")["v"].max()
            frame.groupby("k")["v"].count()

    def test_empty_frames(self):
        empty = DataFrame({})
        no_rows = DataFrame({"a": [], "b": []})
        with kernel_audit():
            for frame in (empty, no_rows):
                frame.fillna(0)
                frame.dropna()
                frame.dropna(axis=1)
                frame.duplicated()
                frame.drop_duplicates()
                frame.take([])
                pd.get_dummies(frame)

    def test_direct_naive_equality(self):
        """Kernel results equal the references via frames_match directly,
        independent of the audit plumbing."""
        rng = random.Random(99)
        frame = random_frame(rng, shape=(10, 4), na_rate=0.4, dup_rows=True)
        assert kernels.frames_match(
            frame.take([2, 0, 5]), naive.take_frame(frame, [2, 0, 5])
        )
        assert kernels.frames_match(
            frame.fillna(0), naive.fillna_frame(frame, 0)
        )
        assert kernels.frames_match(
            frame.dropna(), naive.dropna_frame(frame, 0, "any", None, None)
        )
        assert kernels.series_match(
            frame.duplicated(), naive.duplicated_frame(frame, None)
        )


# ----------------------------------------------------------- audit machinery
class TestKernelAudit:
    def test_audit_raises_on_divergence(self, monkeypatch):
        frame = DataFrame({"a": [1, None, 3]})
        monkeypatch.setattr(
            naive, "fillna_frame", lambda f, v: DataFrame({"a": [9, 9, 9]})
        )
        with kernel_audit():
            with pytest.raises(KernelMismatchError):
                frame.fillna(0)

    def test_audit_scope_restores_prior_state(self):
        assert not kernels.audit_enabled()
        with kernel_audit():
            assert kernels.audit_enabled()
            with kernel_audit(False):
                assert not kernels.audit_enabled()
            assert kernels.audit_enabled()
        assert not kernels.audit_enabled()

    def test_same_cell_is_type_and_flavour_strict(self):
        assert kernels.same_cell(NA, NA)
        assert kernels.same_cell(None, None)
        assert not kernels.same_cell(None, NA)  # missingness flavour
        assert not kernels.same_cell(1, True)  # type-strict
        assert not kernels.same_cell(1, 1.0)
        assert kernels.same_cell("a", "a")


# ---------------------------------------------------------------- bugfix 1/3
class TestDuplicatedSentinel:
    def test_genuine_na_string_does_not_collide_with_missing(self):
        frame = DataFrame({"s": ["__na__", None, "__na__", None]})
        assert frame.duplicated().tolist() == [False, False, True, True]
        kept = frame.drop_duplicates()
        assert kept["s"].tolist()[0] == "__na__"
        assert len(kept) == 2  # one string row AND one missing row survive

    def test_series_sentinel(self):
        s = Series(["__na__", NA, "__na__"])
        assert s.duplicated().tolist() == [False, False, True]
        assert len(s.unique()) == 2

    def test_unhashable_cells_do_not_raise(self):
        frame = DataFrame({"u": [[1], [1], [2], {"k": 1}]})
        assert frame.duplicated().tolist() == [False, True, False, False]
        assert len(frame.drop_duplicates()) == 3

    def test_na_key_distinguishes_flavours_by_identity_only(self):
        assert kernels.na_key(None) is kernels.NA_KEY
        assert kernels.na_key(NA) is kernels.NA_KEY
        assert kernels.na_key("__na__") == "__na__"


# ---------------------------------------------------------------- bugfix 2/3
class TestGetDummiesCollision:
    def test_dummy_vs_existing_column(self):
        frame = DataFrame({"x": ["1", "a"], "x_1": [5, 6]})
        out = pd.get_dummies(frame)
        # nothing silently overwritten: every column present and distinct
        assert len(set(out.columns)) == len(out.columns)
        assert len(out.columns) == 3
        # insertion order decides who keeps the bare name: x's dummies
        # come first, the passthrough collides and gets the suffix
        assert out["x_1"].tolist() == [1, 0]
        assert out["x_a"].tolist() == [0, 1]
        assert out["x_1_1"].tolist() == [5, 6]

    def test_dummy_vs_dummy(self):
        # column "x" value "1_y" vs column "x_1" value "y" both want "x_1_y"
        frame = DataFrame({"x": ["1_y", "1_y"], "x_1": ["y", "z"]})
        out = pd.get_dummies(frame)
        assert len(set(out.columns)) == len(out.columns)
        assert sorted(out.columns) == ["x_1_y", "x_1_y_1", "x_1_z"]
        assert out["x_1_y"].tolist() == [1, 1]  # x's dummy was inserted first
        assert out["x_1_y_1"].tolist() == [1, 0]

    def test_dedup_is_deterministic(self):
        frame = DataFrame({"x": ["1", "a"], "x_1": [5, 6]})
        first = pd.get_dummies(frame)
        second = pd.get_dummies(frame)
        assert first.columns == second.columns

    def test_fresh_name_rule(self):
        used = {"a": None, "a_1": None}
        assert kernels.fresh_name("b", used) == "b"
        assert kernels.fresh_name("a", used) == "a_2"


# ---------------------------------------------------------------- bugfix 3/3
class TestUntouchedColumnSharing:
    def test_fillna_shares_untouched_payloads(self):
        src = DataFrame({"a": [1, None], "b": ["x", "y"], "c": [True, False]})
        out = src.fillna({"a": 0})
        assert out["b"]._values is src["b"]._values
        assert out["c"]._values is src["c"]._values
        assert out["a"]._values is not src["a"]._values
        assert out["a"].tolist() == [1, 0]

    def test_fillna_scalar_shares_columns_with_nothing_missing(self):
        src = DataFrame({"a": [1, 2], "b": [None, "y"]})
        out = src.fillna("z")
        assert out["a"]._values is src["a"]._values
        assert out["b"]._values is not src["b"]._values

    def test_shared_payload_is_mutation_isolated(self):
        src = DataFrame({"a": [1, None], "b": ["x", "y"]})
        out = src.fillna({"a": 0})
        out.loc[0, "b"] = "mut"
        assert src["b"].tolist() == ["x", "y"]  # copy-on-write isolated
        assert out["b"].tolist() == ["mut", "y"]
