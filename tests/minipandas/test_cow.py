"""Copy-on-write payload sharing: structure, identity, and isolation.

Two invariants: (1) ops that leave a column untouched pass the *same
payload list object* through — ``copy()``, column selection, identity
``take``, ``rename``, ``reset_index``, no-op ``fillna``/``ffill`` — so
derived frames and sandbox snapshots share storage; (2) every in-place
mutation entry point materializes a private list first, so no sharer ever
observes a write.
"""

import repro.minipandas as pd
from repro.minipandas import NA, DataFrame, Index, Series
from repro.sandbox import IncrementalExecutor


def payload(frame, col):
    return frame[col]._values


class TestStructuralSharing:
    def test_copy_shares_payloads_and_index(self):
        src = DataFrame({"a": [1, 2], "b": ["x", "y"]})
        out = src.copy()
        assert payload(out, "a") is payload(src, "a")
        assert payload(out, "b") is payload(src, "b")
        assert out.index is src.index

    def test_frame_columns_share_one_index_object(self):
        frame = DataFrame({"a": [1, 2], "b": [3, 4]}, index=["r1", "r2"])
        assert frame["a"].index is frame.index
        assert frame["b"].index is frame.index

    def test_constructor_from_frame_shares(self):
        src = DataFrame({"a": [1, 2]})
        out = DataFrame(src)
        assert payload(out, "a") is payload(src, "a")
        assert out.index is src.index

    def test_constructor_from_series_shares(self):
        s = Series([1, 2, 3], name="s")
        frame = DataFrame({"s": s})
        assert payload(frame, "s") is s._values

    def test_column_selection_shares(self):
        src = DataFrame({"a": [1], "b": [2], "c": [3]})
        out = src[["a", "c"]]
        assert payload(out, "a") is payload(src, "a")
        assert payload(out, "c") is payload(src, "c")

    def test_identity_take_shares(self):
        src = DataFrame({"a": [1, 2, 3]})
        out = src.take([0, 1, 2])
        assert payload(out, "a") is payload(src, "a")

    def test_rename_and_astype_share(self):
        src = DataFrame({"a": [1], "b": [2.5]})
        renamed = src.rename(columns={"a": "z"})
        assert payload(renamed, "z") is payload(src, "a")
        assert renamed["z"].name == "z"
        cast = src.astype({"a": float})
        assert payload(cast, "b") is payload(src, "b")
        assert payload(cast, "a") is not payload(src, "a")

    def test_reset_and_set_index_share(self):
        src = DataFrame({"k": ["x", "y"], "v": [1, 2]}, index=[7, 8])
        flat = src.reset_index()
        assert payload(flat, "v") is payload(src, "v")
        assert flat.index.tolist() == [0, 1]
        keyed = src.set_index("k")
        assert payload(keyed, "v") is payload(src, "v")
        assert keyed.index.tolist() == ["x", "y"]

    def test_noop_ffill_and_setitem_fast_path_share(self):
        src = DataFrame({"a": [1, 2]})
        assert payload(src.ffill(), "a") is payload(src, "a")
        src["b"] = src["a"]
        assert payload(src, "b") is payload(src, "a")

    def test_get_dummies_passthrough_shares(self):
        src = DataFrame({"num": [1, 2], "cat": ["a", "b"]})
        out = pd.get_dummies(src)
        assert payload(out, "num") is payload(src, "num")


class TestMutationIsolation:
    def test_loc_assignment_does_not_leak_into_copy(self):
        src = DataFrame({"a": [1, 2], "b": ["x", "y"]})
        snap = src.copy()
        src.loc[0, "a"] = 99
        assert snap["a"].tolist() == [1, 2]
        assert src["a"].tolist() == [99, 2]
        # untouched column still shared after the write
        assert payload(snap, "b") is payload(src, "b")

    def test_series_setitem_does_not_leak(self):
        src = Series([1, 2, 3], index=["a", "b", "c"])
        twin = src.copy()
        twin["b"] = -1
        assert src.tolist() == [1, 2, 3]
        assert twin.tolist() == [1, -1, 3]

    def test_mask_setitem_does_not_leak(self):
        src = Series([1, 2, 3])
        twin = src.copy()
        twin[twin > 1] = 0
        assert src.tolist() == [1, 2, 3]
        assert twin.tolist() == [1, 0, 0]

    def test_mutating_source_after_sharing_is_isolated(self):
        s = Series([1, 2], name="s")
        frame = DataFrame({"s": s})
        s[0] = 42  # write on the ORIGINAL side of the share
        assert frame["s"].tolist() == [1, 2]

    def test_chain_of_shares_isolated_end_to_end(self):
        a = DataFrame({"x": [1, 2, 3]})
        b = a.copy()
        c = b[["x"]]
        c.loc[1, "x"] = 0
        assert a["x"].tolist() == [1, 2, 3]
        assert b["x"].tolist() == [1, 2, 3]
        assert c["x"].tolist() == [1, 0, 3]


class TestSnapshotSharing:
    SCRIPT = (
        "import pandas as pd\n"
        "df = pd.DataFrame({'a': [1, None, 3], 'b': ['x', 'y', 'z']})\n"
        "df = df.fillna(0)\n"
        "df"
    )

    def test_incremental_snapshots_share_and_count(self):
        executor = IncrementalExecutor()
        first = executor.run_script(self.SCRIPT)
        assert first.ok
        assert executor.stats.frames_snapshotted > 0
        assert executor.stats.payload_cells_shared > 0

    def test_resumed_namespace_is_isolated_from_snapshot(self):
        executor = IncrementalExecutor()
        prefix = (
            "import pandas as pd\n"
            "df = pd.DataFrame({'a': [1, 2]})\n"
        )
        first = executor.run_script(prefix + "df")
        second = executor.run_script(prefix + "df.loc[0, 'a'] = 77\ndf")
        third = executor.run_script(prefix + "df")
        assert first.ok and second.ok and third.ok
        assert second.output["a"].tolist() == [77, 2]
        # the suffix's in-place write must not have reached the snapshot
        assert third.output["a"].tolist() == [1, 2]
        assert executor.stats.prefix_hits >= 2
