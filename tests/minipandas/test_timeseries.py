"""Tests for the time-series/ordering API: shift, diff, cumulative ops,
rank, fills, interpolation, nlargest, datetimes."""

from datetime import datetime

import pytest

import repro.minipandas as pd
from repro.minipandas import NA, DataFrame, Series, is_missing, to_datetime


class TestShiftDiff:
    def test_shift_forward(self):
        out = Series([1, 2, 3]).shift(1)
        assert is_missing(out.iloc[0])
        assert out.iloc[1:].tolist() == [1, 2]

    def test_shift_backward(self):
        out = Series([1, 2, 3]).shift(-1)
        assert out.iloc[0:2].tolist() == [2, 3]
        assert is_missing(out.iloc[2])

    def test_shift_zero_is_identity(self):
        assert Series([1, 2]).shift(0).tolist() == [1, 2]

    def test_shift_beyond_length_all_missing(self):
        out = Series([1, 2]).shift(5)
        assert all(is_missing(v) for v in out)

    def test_shift_keeps_index(self):
        out = Series([1, 2], index=["a", "b"]).shift(1)
        assert out.index.tolist() == ["a", "b"]

    def test_diff(self):
        out = Series([1, 4, 9]).diff()
        assert is_missing(out.iloc[0])
        assert out.iloc[1:].tolist() == [3, 5]

    def test_pct_change(self):
        out = Series([100.0, 110.0]).pct_change()
        assert out.iloc[1] == pytest.approx(0.1)


class TestCumulative:
    def test_cumsum(self):
        assert Series([1, 2, 3]).cumsum().tolist() == [1.0, 3.0, 6.0]

    def test_cumsum_skips_missing(self):
        out = Series([1.0, NA, 2.0]).cumsum()
        assert out.iloc[0] == 1.0
        assert is_missing(out.iloc[1])
        assert out.iloc[2] == 3.0

    def test_cummax_cummin(self):
        s = Series([2, 1, 5, 3])
        assert s.cummax().tolist() == [2, 2, 5, 5]
        assert s.cummin().tolist() == [2, 1, 1, 1]


class TestRank:
    def test_rank_ascending(self):
        assert Series([30, 10, 20]).rank().tolist() == [3.0, 1.0, 2.0]

    def test_rank_descending(self):
        assert Series([30, 10, 20]).rank(ascending=False).tolist() == [1.0, 3.0, 2.0]

    def test_rank_ties_average(self):
        assert Series([10, 10, 20]).rank().tolist() == [1.5, 1.5, 3.0]

    def test_rank_ties_min(self):
        assert Series([10, 10, 20]).rank(method="min").tolist() == [1, 1, 3]

    def test_rank_ties_first(self):
        assert Series([10, 10, 20]).rank(method="first").tolist() == [1, 2, 3]

    def test_rank_missing_stays_missing(self):
        out = Series([10, NA]).rank()
        assert out.iloc[0] == 1.0
        assert is_missing(out.iloc[1])

    def test_rank_invalid_method(self):
        with pytest.raises(ValueError):
            Series([1]).rank(method="dense")


class TestFills:
    def test_ffill(self):
        out = Series([1.0, NA, NA, 2.0]).ffill()
        assert out.tolist() == [1.0, 1.0, 1.0, 2.0]

    def test_ffill_leading_gap_stays(self):
        assert is_missing(Series([NA, 1.0]).ffill().iloc[0])

    def test_bfill(self):
        out = Series([NA, 1.0, NA, 2.0]).bfill()
        assert out.tolist() == [1.0, 1.0, 2.0, 2.0]

    def test_bfill_trailing_gap_stays(self):
        assert is_missing(Series([1.0, NA]).bfill().iloc[1])

    def test_interpolate_linear(self):
        out = Series([0.0, NA, NA, 3.0]).interpolate()
        assert out.tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_interpolate_edges_stay_missing(self):
        out = Series([NA, 1.0, 2.0, NA]).interpolate()
        assert is_missing(out.iloc[0])
        assert is_missing(out.iloc[3])

    def test_frame_ffill(self):
        frame = DataFrame({"a": [1.0, NA], "b": ["x", None]})
        out = frame.ffill()
        assert out["a"].tolist() == [1.0, 1.0]
        assert out["b"].tolist() == ["x", "x"]


class TestNLargest:
    def test_series_nlargest(self):
        assert Series([5, 1, 9, 3]).nlargest(2).tolist() == [9, 5]

    def test_series_nsmallest(self):
        assert Series([5, 1, 9, 3]).nsmallest(2).tolist() == [1, 3]

    def test_frame_nlargest(self):
        frame = DataFrame({"v": [5, 1, 9], "k": ["a", "b", "c"]})
        out = frame.nlargest(2, "v")
        assert out["k"].tolist() == ["c", "a"]

    def test_frame_shift(self):
        frame = DataFrame({"v": [1, 2]})
        out = frame.shift(1)
        assert is_missing(out["v"].iloc[0])
        assert out["v"].iloc[1] == 1


class TestPivot:
    def test_pivot_basic(self):
        frame = DataFrame(
            {"r": ["x", "x", "y"], "c": ["p", "q", "p"], "v": [1.0, 2.0, 3.0]}
        )
        out = frame.pivot(index="r", columns="c", values="v")
        assert out["p"].tolist() == [1.0, 3.0]
        assert out["q"].iloc[0] == 2.0

    def test_pivot_duplicate_keys_raise(self):
        frame = DataFrame({"r": ["x", "x"], "c": ["p", "p"], "v": [1.0, 2.0]})
        with pytest.raises(ValueError):
            frame.pivot(index="r", columns="c", values="v")


class TestDatetimes:
    def test_to_datetime_iso(self):
        out = to_datetime(Series(["2015-01-02"]))
        assert out.iloc[0] == datetime(2015, 1, 2)

    def test_to_datetime_sales_format(self):
        out = to_datetime(Series(["02.01.2015"]))
        assert out.iloc[0] == datetime(2015, 1, 2)

    def test_to_datetime_explicit_format(self):
        out = to_datetime(Series(["2015|01|02"]), format="%Y|%m|%d")
        assert out.iloc[0].year == 2015

    def test_to_datetime_bad_raises(self):
        with pytest.raises(ValueError):
            to_datetime(Series(["not a date"]))

    def test_to_datetime_coerce(self):
        out = to_datetime(Series(["2015-01-02", "junk"]), errors="coerce")
        assert out.iloc[0].year == 2015
        assert is_missing(out.iloc[1])

    def test_to_datetime_missing_passthrough(self):
        assert is_missing(to_datetime(Series([None])).iloc[0])

    def test_module_level_export(self):
        assert pd.to_datetime(Series(["2020-05-05"])).iloc[0].month == 5

    def test_dt_year_month_day(self):
        s = to_datetime(Series(["2015-03-09"]))
        assert s.dt.year.tolist() == [2015]
        assert s.dt.month.tolist() == [3]
        assert s.dt.day.tolist() == [9]

    def test_dt_dayofweek_quarter(self):
        s = to_datetime(Series(["2015-03-09"]))  # a Monday
        assert s.dt.dayofweek.tolist() == [0]
        assert s.dt.quarter.tolist() == [1]

    def test_dt_strftime(self):
        s = to_datetime(Series(["2015-03-09"]))
        assert s.dt.strftime("%Y/%m").tolist() == ["2015/03"]

    def test_dt_on_non_datetime_raises(self):
        with pytest.raises(AttributeError):
            Series(["2015-03-09"]).dt.year  # strings need to_datetime first

    def test_dt_missing_passthrough(self):
        s = to_datetime(Series(["2015-03-09", None]))
        out = s.dt.year
        assert out.iloc[0] == 2015
        assert is_missing(out.iloc[1])


class TestRolling:
    def test_rolling_mean(self):
        out = Series([1.0, 2.0, 3.0, 4.0]).rolling(2).mean()
        assert is_missing(out.iloc[0])
        assert out.iloc[1:].tolist() == [1.5, 2.5, 3.5]

    def test_rolling_sum_min_max(self):
        s = Series([1.0, 3.0, 2.0])
        assert s.rolling(2).sum().iloc[1:].tolist() == [4.0, 5.0]
        assert s.rolling(2).min().iloc[2] == 2.0
        assert s.rolling(2).max().iloc[2] == 3.0

    def test_rolling_median_std(self):
        s = Series([1.0, 2.0, 9.0])
        assert s.rolling(3).median().iloc[2] == 2.0
        assert s.rolling(2).std().iloc[1] == pytest.approx(0.7071, abs=1e-3)

    def test_min_periods(self):
        out = Series([1.0, 2.0, 3.0]).rolling(3, min_periods=1).mean()
        assert out.tolist() == [1.0, 1.5, 2.0]

    def test_missing_values_skipped_in_window(self):
        out = Series([1.0, NA, 3.0]).rolling(3, min_periods=2).mean()
        assert is_missing(out.iloc[0])
        assert is_missing(out.iloc[1])
        assert out.iloc[2] == 2.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            Series([1.0]).rolling(0)
        with pytest.raises(ValueError):
            Series([1.0]).rolling(2, min_periods=0)

    def test_preserves_index(self):
        out = Series([1.0, 2.0], index=["a", "b"]).rolling(1).mean()
        assert out.index.tolist() == ["a", "b"]
