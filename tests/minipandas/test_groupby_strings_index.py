"""Tests for GroupBy, the .str accessor, and Index."""

import pytest

from repro.minipandas import NA, DataFrame, Index, Series, is_missing


@pytest.fixture()
def sales():
    return DataFrame(
        {
            "shop": ["a", "a", "b", "b", "b"],
            "region": ["n", "s", "n", "n", "s"],
            "amount": [10.0, 20.0, 30.0, NA, 50.0],
            "units": [1, 2, 3, 4, 5],
        }
    )


class TestGroupBy:
    def test_single_column_mean(self, sales):
        out = sales.groupby("shop")["amount"].mean()
        assert out["a"] == 15.0
        assert out["b"] == 40.0

    def test_sum_count(self, sales):
        assert sales.groupby("shop")["units"].sum().tolist() == [3.0, 12.0]
        assert sales.groupby("shop")["amount"].count().tolist() == [2, 2]

    def test_min_max(self, sales):
        g = sales.groupby("shop")["units"]
        assert g.min().tolist() == [1, 3]
        assert g.max().tolist() == [2, 5]

    def test_median_std(self, sales):
        g = sales.groupby("shop")["units"]
        assert g.median().tolist() == [1.5, 4.0]
        assert g.std()["a"] == pytest.approx(0.7071, abs=1e-3)

    def test_nunique(self, sales):
        assert sales.groupby("shop")["region"].nunique().tolist() == [2, 2]

    def test_frame_level_mean(self, sales):
        out = sales.groupby("shop").mean()
        assert out.columns == ["amount", "units"]
        assert out["units"].tolist() == [1.5, 4.0]

    def test_agg_string(self, sales):
        out = sales.groupby("shop").agg("sum")
        assert out["units"].tolist() == [3.0, 12.0]

    def test_agg_dict(self, sales):
        out = sales.groupby("shop").agg({"units": "max"})
        assert out["units"].tolist() == [2, 5]

    def test_agg_invalid_raises(self, sales):
        with pytest.raises(ValueError):
            sales.groupby("shop").agg("bogus")

    def test_size(self, sales):
        assert sales.groupby("shop").size().tolist() == [2, 3]

    def test_ngroups(self, sales):
        assert sales.groupby("shop").ngroups() == 2

    def test_multi_key(self, sales):
        out = sales.groupby(["shop", "region"]).size()
        assert out[("b", "n")] == 2

    def test_transform_broadcasts(self, sales):
        out = sales.groupby("shop")["units"].transform("mean")
        assert out.tolist() == [1.5, 1.5, 4.0, 4.0, 4.0]

    def test_transform_invalid_raises(self, sales):
        with pytest.raises(ValueError):
            sales.groupby("shop")["units"].transform("bogus")

    def test_na_group_keys_dropped(self):
        frame = DataFrame({"k": ["a", None], "v": [1, 2]})
        assert frame.groupby("k").ngroups() == 1

    def test_unknown_group_column_raises(self, sales):
        with pytest.raises(KeyError):
            sales.groupby("zzz")

    def test_unknown_value_column_raises(self, sales):
        with pytest.raises(KeyError):
            sales.groupby("shop")["zzz"]

    def test_groups_positions(self, sales):
        groups = sales.groupby("shop").groups
        assert groups["a"] == [0, 1]


class TestStringAccessor:
    def test_lower_upper(self):
        s = Series(["Ab", "cD"])
        assert s.str.lower().tolist() == ["ab", "cd"]
        assert s.str.upper().tolist() == ["AB", "CD"]

    def test_strip_variants(self):
        s = Series(["  x  "])
        assert s.str.strip().tolist() == ["x"]
        assert s.str.lstrip().tolist() == ["x  "]
        assert s.str.rstrip().tolist() == ["  x"]

    def test_len(self):
        assert Series(["ab", "abc"]).str.len().tolist() == [2, 3]

    def test_missing_passthrough(self):
        out = Series(["a", None]).str.upper()
        assert out.iloc[0] == "A"
        assert is_missing(out.iloc[1])

    def test_non_string_raises(self):
        with pytest.raises(AttributeError):
            Series([1]).str.lower()

    def test_contains_regex(self):
        assert Series(["cat", "dog"]).str.contains("^c").tolist() == [True, False]

    def test_contains_literal(self):
        assert Series(["a.b", "ab"]).str.contains(".", regex=False).tolist() == [True, False]

    def test_contains_case_insensitive(self):
        assert Series(["ABC"]).str.contains("abc", case=False).tolist() == [True]

    def test_startswith_endswith(self):
        s = Series(["apple", "banana"])
        assert s.str.startswith("a").tolist() == [True, False]
        assert s.str.endswith("a").tolist() == [False, True]

    def test_replace_regex(self):
        assert Series(["a1b2"]).str.replace(r"\d", "#").tolist() == ["a#b#"]

    def test_replace_literal(self):
        assert Series(["a.b"]).str.replace(".", "-", regex=False).tolist() == ["a-b"]

    def test_split_get(self):
        s = Series(["a,b,c"])
        assert s.str.split(",").iloc[0] == ["a", "b", "c"]
        assert Series(["abc"]).str.get(1).tolist() == ["b"]

    def test_get_out_of_range_is_missing(self):
        assert is_missing(Series(["a"]).str.get(5).iloc[0])

    def test_slice(self):
        assert Series(["abcdef"]).str.slice(1, 3).tolist() == ["bc"]

    def test_extract(self):
        assert Series(["id-42"]).str.extract(r"id-(\d+)").tolist() == ["42"]

    def test_extract_no_match_is_missing(self):
        assert is_missing(Series(["xyz"]).str.extract(r"(\d+)").iloc[0])

    def test_extract_requires_one_group(self):
        with pytest.raises(ValueError):
            Series(["x"]).str.extract(r"(\d)(\d)")

    def test_title_capitalize(self):
        assert Series(["hello world"]).str.title().tolist() == ["Hello World"]
        assert Series(["hello"]).str.capitalize().tolist() == ["Hello"]

    def test_zfill_isdigit_isalpha(self):
        assert Series(["7"]).str.zfill(3).tolist() == ["007"]
        assert Series(["12", "ab"]).str.isdigit().tolist() == [True, False]
        assert Series(["12", "ab"]).str.isalpha().tolist() == [False, True]


class TestIndex:
    def test_len_iter_contains(self):
        idx = Index(["a", "b"])
        assert len(idx) == 2
        assert list(idx) == ["a", "b"]
        assert "a" in idx and "z" not in idx

    def test_get_loc(self):
        assert Index(["x", "y"]).get_loc("y") == 1

    def test_get_loc_missing_raises(self):
        with pytest.raises(KeyError):
            Index(["x"]).get_loc("z")

    def test_get_loc_first_duplicate(self):
        assert Index(["a", "a"]).get_loc("a") == 0

    def test_positions_for(self):
        assert Index(["a", "b", "c"]).positions_for(["c", "a"]) == [2, 0]

    def test_positions_for_missing_raises(self):
        with pytest.raises(KeyError):
            Index(["a"]).positions_for(["z"])

    def test_getitem_scalar_and_slice(self):
        idx = Index([10, 20, 30])
        assert idx[1] == 20
        assert idx[0:2].tolist() == [10, 20]

    def test_equality(self):
        assert Index([1, 2]) == Index([1, 2])
        assert Index([1, 2]) == [1, 2]
        assert not (Index([1]) == Index([2]))

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Index([1]))

    def test_is_unique(self):
        assert Index([1, 2]).is_unique()
        assert not Index([1, 1]).is_unique()

    def test_take(self):
        assert Index(["a", "b", "c"]).take([2, 0]).tolist() == ["c", "a"]
