"""Tests for CSV I/O and module-level table operations."""

import io

import pytest

import repro.minipandas as pd
from repro.minipandas import NA, DataFrame, Series, is_missing
from repro.minipandas.ops import melt, pivot_table


class TestReadCsv:
    def test_basic_types(self):
        frame = pd.read_csv(io.StringIO("a,b,c\n1,1.5,x\n2,2.5,y\n"))
        assert frame.dtypes.tolist() == ["int64", "float64", "object"]

    def test_int_with_missing_promotes_to_float(self):
        frame = pd.read_csv(io.StringIO("a\n1\n\n3\n"))
        assert frame.dtypes["a"] == "float64"
        assert is_missing(frame["a"].iloc[1])

    def test_na_sentinels(self):
        frame = pd.read_csv(io.StringIO("a\nNA\nNaN\nnull\nN/A\n1\n"))
        assert frame["a"].count() == 1

    def test_object_missing_is_none(self):
        frame = pd.read_csv(io.StringIO("a\nx\n\n"))
        assert frame["a"].iloc[1] is None

    def test_bool_column(self):
        frame = pd.read_csv(io.StringIO("a\nTrue\nFalse\n"))
        assert frame.dtypes["a"] == "bool"
        assert frame["a"].tolist() == [True, False]

    def test_negative_and_signed_ints(self):
        frame = pd.read_csv(io.StringIO("a\n-3\n+4\n"))
        assert frame["a"].tolist() == [-3, 4]

    def test_scientific_floats(self):
        frame = pd.read_csv(io.StringIO("a\n1e3\n2.5e-1\n"))
        assert frame["a"].tolist() == [1000.0, 0.25]

    def test_usecols(self):
        frame = pd.read_csv(io.StringIO("a,b\n1,2\n"), usecols=["b"])
        assert frame.columns == ["b"]

    def test_nrows(self):
        frame = pd.read_csv(io.StringIO("a\n1\n2\n3\n"), nrows=2)
        assert len(frame) == 2

    def test_index_col(self):
        frame = pd.read_csv(io.StringIO("id,a\nr1,1\nr2,2\n"), index_col="id")
        assert frame.index.tolist() == ["r1", "r2"]
        assert frame.columns == ["a"]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            pd.read_csv(io.StringIO(""))

    def test_short_row_padded_with_missing(self):
        frame = pd.read_csv(io.StringIO("a,b\n1\n"))
        assert is_missing(frame["b"].iloc[0])

    def test_roundtrip_through_file(self, tmp_path):
        original = DataFrame({"x": [1, 2], "y": ["a", None], "z": [1.5, NA]})
        path = str(tmp_path / "t.csv")
        original.to_csv(path)
        back = pd.read_csv(path)
        assert back["x"].tolist() == [1, 2]
        assert back["y"].iloc[1] is None
        assert is_missing(back["z"].iloc[1])

    def test_roundtrip_with_index(self, tmp_path):
        original = DataFrame({"x": [1]}, index=["r"])
        path = str(tmp_path / "t.csv")
        original.to_csv(path, index=True)
        back = pd.read_csv(path, index_col="index")
        assert back.index.tolist() == ["r"]

    def test_missing_file_raises(self):
        with pytest.raises(FileNotFoundError):
            pd.read_csv("/nonexistent/file.csv")


class TestGetDummies:
    def test_encodes_object_columns_by_default(self):
        frame = DataFrame({"n": [1, 2], "s": ["a", "b"]})
        out = pd.get_dummies(frame)
        assert sorted(out.columns) == ["n", "s_a", "s_b"]
        assert out["s_a"].tolist() == [1, 0]

    def test_explicit_columns(self):
        frame = DataFrame({"s": ["a", "b"], "t": ["x", "y"]})
        out = pd.get_dummies(frame, columns=["s"])
        assert "t" in out.columns
        assert "s_a" in out.columns

    def test_missing_column_raises(self):
        with pytest.raises(KeyError):
            pd.get_dummies(DataFrame({"a": [1]}), columns=["zzz"])

    def test_missing_values_encode_to_zero(self):
        out = pd.get_dummies(DataFrame({"s": ["a", None]}))
        assert out["s_a"].tolist() == [1, 0]

    def test_drop_first(self):
        out = pd.get_dummies(DataFrame({"s": ["a", "b", "c"]}), drop_first=True)
        assert sorted(out.columns) == ["s_b", "s_c"]

    def test_prefix(self):
        out = pd.get_dummies(DataFrame({"s": ["a"]}), prefix="P")
        assert out.columns == ["P_a"]

    def test_series_input(self):
        out = pd.get_dummies(Series(["a", "b"], name="s"))
        assert sorted(out.columns) == ["s_a", "s_b"]

    def test_numeric_frame_is_untouched(self):
        frame = DataFrame({"a": [1, 2]})
        out = pd.get_dummies(frame)
        assert out.columns == ["a"]

    def test_encodes_bool_columns_by_default(self):
        # pandas treats bool like object for default column selection
        frame = DataFrame({"flag": [True, False, True], "n": [1, 2, 3]})
        out = pd.get_dummies(frame)
        assert sorted(out.columns) == ["flag_False", "flag_True", "n"]
        assert out["flag_True"].tolist() == [1, 0, 1]
        assert out["flag_False"].tolist() == [0, 1, 0]

    def test_mixed_bool_object_numeric_default_selection(self):
        frame = DataFrame(
            {"b": [True, False], "s": ["x", "y"], "n": [0.5, 1.5]}
        )
        out = pd.get_dummies(frame)
        assert "n" in out.columns
        assert {"b_False", "b_True", "s_x", "s_y"} <= set(out.columns)

    def test_preserves_index(self):
        frame = DataFrame({"s": ["a", "b"]}, index=[5, 9])
        assert pd.get_dummies(frame).index.tolist() == [5, 9]


class TestConcat:
    def test_vertical(self):
        a = DataFrame({"x": [1]})
        b = DataFrame({"x": [2]})
        out = pd.concat([a, b], ignore_index=True)
        assert out["x"].tolist() == [1, 2]
        assert out.index.tolist() == [0, 1]

    def test_vertical_union_of_columns(self):
        a = DataFrame({"x": [1]})
        b = DataFrame({"y": [2]})
        out = pd.concat([a, b], ignore_index=True)
        assert is_missing(out["y"].iloc[0])
        assert is_missing(out["x"].iloc[1])

    def test_horizontal(self):
        a = DataFrame({"x": [1, 2]})
        b = DataFrame({"y": [3, 4]})
        out = pd.concat([a, b], axis=1)
        assert out.columns == ["x", "y"]

    def test_horizontal_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pd.concat([DataFrame({"x": [1]}), DataFrame({"y": [1, 2]})], axis=1)

    def test_horizontal_name_collision_renamed(self):
        a = DataFrame({"x": [1]})
        b = DataFrame({"x": [2]})
        out = pd.concat([a, b], axis=1)
        assert out.columns == ["x", "x_1"]

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            pd.concat([])

    def test_series_members(self):
        out = pd.concat([Series([1], name="s"), Series([2], name="s")], ignore_index=True)
        assert out["s"].tolist() == [1, 2]


class TestMerge:
    def test_inner(self):
        left = DataFrame({"k": ["a", "b"], "v": [1, 2]})
        right = DataFrame({"k": ["b", "c"], "w": [3, 4]})
        out = pd.merge(left, right, on="k")
        assert out["k"].tolist() == ["b"]
        assert out["v"].tolist() == [2]
        assert out["w"].tolist() == [3]

    def test_left(self):
        left = DataFrame({"k": ["a", "b"], "v": [1, 2]})
        right = DataFrame({"k": ["b"], "w": [3]})
        out = pd.merge(left, right, on="k", how="left")
        assert out["k"].tolist() == ["a", "b"]
        assert is_missing(out["w"].iloc[0])

    def test_outer(self):
        left = DataFrame({"k": ["a"], "v": [1]})
        right = DataFrame({"k": ["b"], "w": [2]})
        out = pd.merge(left, right, on="k", how="outer")
        assert sorted(out["k"].tolist()) == ["a", "b"]

    def test_one_to_many(self):
        left = DataFrame({"k": ["a"], "v": [1]})
        right = DataFrame({"k": ["a", "a"], "w": [1, 2]})
        assert len(pd.merge(left, right, on="k")) == 2

    def test_suffixes(self):
        left = DataFrame({"k": ["a"], "v": [1]})
        right = DataFrame({"k": ["a"], "v": [2]})
        out = pd.merge(left, right, on="k")
        assert "v_x" in out.columns and "v_y" in out.columns

    def test_left_on_right_on(self):
        left = DataFrame({"lk": ["a"], "v": [1]})
        right = DataFrame({"rk": ["a"], "w": [2]})
        out = pd.merge(left, right, left_on="lk", right_on="rk")
        assert len(out) == 1

    def test_infers_shared_columns(self):
        left = DataFrame({"k": ["a"], "v": [1]})
        right = DataFrame({"k": ["a"], "w": [2]})
        assert len(pd.merge(left, right)) == 1

    def test_no_common_columns_raises(self):
        with pytest.raises(ValueError):
            pd.merge(DataFrame({"a": [1]}), DataFrame({"b": [1]}))

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            pd.merge(DataFrame({"a": [1]}), DataFrame({"a": [1]}), on="zzz")

    def test_na_keys_do_not_match(self):
        left = DataFrame({"k": [None], "v": [1]})
        right = DataFrame({"k": [None], "w": [2]})
        assert len(pd.merge(left, right, on="k")) == 0

    def test_method_form(self):
        left = DataFrame({"k": ["a"], "v": [1]})
        right = DataFrame({"k": ["a"], "w": [2]})
        assert len(left.merge(right, on="k")) == 1


class TestCutQcut:
    def test_cut_int_bins(self):
        out = pd.cut(Series([1.0, 5.0, 9.0]), 2)
        assert out.iloc[0] != out.iloc[2]

    def test_cut_explicit_edges_with_labels(self):
        out = pd.cut(Series([5, 15, 25]), [0, 10, 20, 30], labels=["lo", "mid", "hi"])
        assert out.tolist() == ["lo", "mid", "hi"]

    def test_cut_out_of_range_is_missing(self):
        out = pd.cut(Series([100]), [0, 10], labels=["x"])
        assert is_missing(out.iloc[0])

    def test_cut_missing_passthrough(self):
        out = pd.cut(Series([NA, 5.0]), [0, 10], labels=["x"])
        assert is_missing(out.iloc[0])

    def test_qcut_quartiles(self):
        out = pd.qcut(Series(list(range(100))), 4, labels=["q1", "q2", "q3", "q4"])
        assert out.iloc[0] == "q1"
        assert out.iloc[99] == "q4"


class TestToNumeric:
    def test_parses_strings(self):
        assert pd.to_numeric(Series(["1.5", "2"])).tolist() == [1.5, 2.0]

    def test_raise_on_bad(self):
        with pytest.raises(ValueError):
            pd.to_numeric(Series(["abc"]))

    def test_coerce(self):
        out = pd.to_numeric(Series(["1", "abc"]), errors="coerce")
        assert out.iloc[0] == 1.0
        assert is_missing(out.iloc[1])

    def test_ints_stay_ints(self):
        assert pd.to_numeric(Series([1, 2])).dtype == "int64"


class TestMeltPivot:
    def test_melt_shape(self):
        frame = DataFrame({"id": [1, 2], "a": [10, 20], "b": [30, 40]})
        out = melt(frame, id_vars=["id"])
        assert out.shape == (4, 3)
        assert set(out["variable"].tolist()) == {"a", "b"}

    def test_melt_no_id_vars(self):
        out = melt(DataFrame({"a": [1], "b": [2]}))
        assert out.shape == (2, 2)

    def test_pivot_table_mean(self):
        frame = DataFrame(
            {"r": ["x", "x", "y"], "c": ["p", "p", "q"], "v": [1.0, 3.0, 5.0]}
        )
        out = pivot_table(frame, values="v", index="r", columns="c")
        assert out["p"].iloc[0] == 2.0
        assert is_missing(out["q"].iloc[0])

    def test_pivot_table_invalid_aggfunc(self):
        frame = DataFrame({"r": ["x"], "c": ["p"], "v": [1.0]})
        with pytest.raises(ValueError):
            pivot_table(frame, values="v", index="r", columns="c", aggfunc="bogus")


class TestModuleLevelNulls:
    def test_isnull_scalar(self):
        assert pd.isnull(NA)
        assert not pd.isnull(1)

    def test_isnull_series(self):
        assert pd.isnull(Series([NA, 1.0])).tolist() == [True, False]

    def test_notnull_frame(self):
        assert pd.notnull(DataFrame({"a": [1]}))["a"].tolist() == [True]

    def test_unique(self):
        assert pd.unique(Series([1, 1, 2])) == [1, 2]
