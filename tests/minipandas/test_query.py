"""Tests for DataFrame.query (safe AST-based expression filtering)."""

import pytest

from repro.minipandas import NA, DataFrame


@pytest.fixture()
def df():
    return DataFrame(
        {
            "Age": [15, 22, 35, 70],
            "Sex": ["m", "f", "m", "f"],
            "Fare": [10.0, NA, 30.0, 200.0],
        }
    )


class TestBasicComparisons:
    def test_greater(self, df):
        assert df.query("Age > 30")["Age"].tolist() == [35, 70]

    def test_equality_string(self, df):
        assert df.query("Sex == 'f'")["Age"].tolist() == [22, 70]

    def test_not_equal(self, df):
        assert df.query("Sex != 'f'")["Age"].tolist() == [15, 35]

    def test_chained_comparison(self, df):
        assert df.query("18 <= Age <= 40")["Age"].tolist() == [22, 35]

    def test_missing_values_excluded(self, df):
        assert df.query("Fare > 0")["Age"].tolist() == [15, 35, 70]


class TestBooleanLogic:
    def test_and(self, df):
        out = df.query("Age > 18 and Sex == 'm'")
        assert out["Age"].tolist() == [35]

    def test_or(self, df):
        out = df.query("Age < 18 or Age > 60")
        assert out["Age"].tolist() == [15, 70]

    def test_not(self, df):
        assert df.query("not Sex == 'f'")["Age"].tolist() == [15, 35]

    def test_ampersand_and_pipe(self, df):
        assert df.query("(Age > 18) & (Sex == 'm')")["Age"].tolist() == [35]
        assert df.query("(Age < 18) | (Age > 60)")["Age"].tolist() == [15, 70]

    def test_parentheses(self, df):
        out = df.query("(Age > 18 and Sex == 'm') or Age > 60")
        assert out["Age"].tolist() == [35, 70]


class TestExpressions:
    def test_arithmetic(self, df):
        assert df.query("Age * 2 > 60")["Age"].tolist() == [35, 70]

    def test_column_vs_column(self, df):
        assert df.query("Fare > Age")["Age"].tolist() == [70]

    def test_in_list(self, df):
        assert df.query("Age in [15, 70]")["Age"].tolist() == [15, 70]

    def test_not_in_list(self, df):
        assert df.query("Age not in [15, 70]")["Age"].tolist() == [22, 35]

    def test_abs_call(self, df):
        assert df.query("abs(Age - 30) < 10")["Age"].tolist() == [22, 35]

    def test_at_variables(self, df):
        out = df.query("Age > @lo and Age < @hi", lo=18, hi=40)
        assert out["Age"].tolist() == [22, 35]


class TestErrors:
    def test_unknown_column(self, df):
        with pytest.raises(ValueError):
            df.query("Bogus > 1")

    def test_undefined_at_variable(self, df):
        with pytest.raises(ValueError):
            df.query("Age > @nope")

    def test_syntax_error(self, df):
        with pytest.raises(ValueError):
            df.query("Age >")

    def test_non_boolean_result(self, df):
        with pytest.raises(ValueError):
            df.query("Age + 1")

    def test_attribute_access_blocked(self, df):
        with pytest.raises(ValueError):
            df.query("Age.__class__ == 1")

    def test_arbitrary_calls_blocked(self, df):
        with pytest.raises(ValueError):
            df.query("print(Age)")

    def test_lambda_blocked(self, df):
        with pytest.raises(ValueError):
            df.query("(lambda: 1)()")


class TestSandboxIntegration:
    def test_query_runs_inside_scripts(self, diabetes_dir):
        from repro.sandbox import run_script

        script = (
            "import pandas as pd\n"
            "df = pd.read_csv('diabetes.csv')\n"
            "df = df.query('SkinThickness < 80')"
        )
        result = run_script(script, data_dir=diabetes_dir)
        assert result.ok
        assert (result.output["SkinThickness"] < 80).all()
