"""Property-based tests (hypothesis) for minipandas invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.minipandas as pd
from repro.minipandas import NA, DataFrame, Series, is_missing

# values a numeric column may hold (NaN included)
numeric_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.just(NA),
)
numeric_lists = st.lists(numeric_values, min_size=0, max_size=40)
nonempty_numeric_lists = st.lists(numeric_values, min_size=1, max_size=40)
string_values = st.one_of(st.text(min_size=0, max_size=8), st.none())
string_lists = st.lists(string_values, min_size=1, max_size=30)


@given(numeric_lists)
def test_fillna_removes_all_missing(values):
    out = Series(values).fillna(0)
    assert not any(is_missing(v) for v in out)


@given(numeric_lists)
def test_fillna_preserves_length_and_present_values(values):
    s = Series(values)
    out = s.fillna(-1)
    assert len(out) == len(s)
    for before, after in zip(s, out):
        if not is_missing(before):
            assert after == before


@given(numeric_lists)
def test_dropna_count_identity(values):
    s = Series(values)
    assert len(s.dropna()) == s.count()


@given(numeric_lists)
def test_isnull_notnull_partition(values):
    s = Series(values)
    nulls = s.isnull().tolist()
    notnulls = s.notnull().tolist()
    assert all(a != b for a, b in zip(nulls, notnulls))


@given(nonempty_numeric_lists)
def test_mean_bounded_by_min_max(values):
    s = Series(values)
    if s.count() == 0:
        assert is_missing(s.mean())
        return
    assert s.min() - 1e-6 <= s.mean() <= s.max() + 1e-6


@given(nonempty_numeric_lists)
def test_sort_values_is_ordered_permutation(values):
    s = Series(values)
    out = s.sort_values()
    present = [v for v in out if not is_missing(v)]
    assert all(a <= b for a, b in zip(present, present[1:]))
    assert len(out) == len(s)
    assert sorted(map(repr, out.tolist())) == sorted(map(repr, s.tolist()))


@given(nonempty_numeric_lists, st.integers(min_value=0, max_value=50))
def test_sample_is_subset_without_replacement(values, n):
    s = Series(values)
    out = s.sample(n, random_state=0)
    assert len(out) == min(n, len(s))
    labels = out.index.tolist()
    assert len(set(labels)) == len(labels)
    for label in labels:
        assert label in s.index


@given(string_lists)
def test_value_counts_sums_to_count(values):
    s = Series(values)
    assert s.value_counts().sum() == s.count()


@given(string_lists)
def test_value_counts_normalized_sums_to_one(values):
    s = Series(values)
    if s.count():
        assert s.value_counts(normalize=True).sum() == pytest.approx(1.0)


@given(string_lists)
def test_unique_matches_set(values):
    s = Series(values)
    uniq = [v for v in s.unique() if not is_missing(v)]
    assert set(uniq) == {v for v in values if not is_missing(v)}
    assert len(uniq) == s.nunique()


@given(numeric_lists, numeric_lists)
def test_series_add_commutes(a_values, b_values):
    n = min(len(a_values), len(b_values))
    a, b = Series(a_values[:n]), Series(b_values[:n])
    left, right = (a + b).tolist(), (b + a).tolist()
    for x, y in zip(left, right):
        if is_missing(x) or is_missing(y):
            assert is_missing(x) and is_missing(y)
        else:
            assert x == pytest.approx(y)


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=30))
def test_mask_filter_equals_python_filter(values):
    s = Series(values)
    assert s[s > 0].tolist() == [v for v in values if v > 0]


@given(st.lists(st.integers(-5, 5), min_size=1, max_size=30))
def test_between_equals_two_comparisons(values):
    s = Series(values)
    combined = (s >= -2) & (s <= 2)
    assert s.between(-2, 2).tolist() == combined.tolist()


@given(st.lists(st.sampled_from(["a", "b", "c", None]), min_size=1, max_size=30))
def test_get_dummies_row_count_and_onehot(labels):
    frame = DataFrame({"s": labels})
    out = pd.get_dummies(frame)
    assert len(out) == len(labels)
    # each row has at most one hot dummy cell, exactly one when not missing
    dummy_cols = [c for c in out.columns if c.startswith("s_")]
    for pos, label in enumerate(labels):
        hot = sum(out[c].iloc[pos] for c in dummy_cols)
        if label is None:
            assert hot == 0
        elif dummy_cols:
            assert hot == 1


@given(
    st.lists(st.integers(0, 3), min_size=1, max_size=25),
    st.lists(st.integers(0, 3), min_size=1, max_size=25),
)
def test_concat_length_is_sum(a_vals, b_vals):
    a, b = DataFrame({"x": a_vals}), DataFrame({"x": b_vals})
    assert len(pd.concat([a, b], ignore_index=True)) == len(a) + len(b)


@given(st.lists(st.sampled_from(["p", "q", "r"]), min_size=1, max_size=30))
def test_groupby_sizes_sum_to_rows(keys):
    frame = DataFrame({"k": keys, "v": list(range(len(keys)))})
    assert frame.groupby("k").size().sum() == len(keys)


@given(st.lists(st.sampled_from(["p", "q"]), min_size=1, max_size=30))
def test_groupby_transform_preserves_order_and_length(keys):
    frame = DataFrame({"k": keys, "v": list(range(len(keys)))})
    out = frame.groupby("k")["v"].transform("mean")
    assert len(out) == len(keys)
    # all rows of the same group share the broadcast value
    by_key = {}
    for key, value in zip(keys, out):
        by_key.setdefault(key, set()).add(value)
    assert all(len(vals) == 1 for vals in by_key.values())


@given(st.lists(st.tuples(st.integers(0, 50), st.sampled_from("xyz")), min_size=1, max_size=30))
@settings(max_examples=50)
def test_csv_roundtrip_preserves_values(rows):
    import tempfile

    with tempfile.NamedTemporaryFile(mode="w", suffix=".csv", delete=False) as handle:
        path = handle.name
    frame = DataFrame(
        {"n": [r[0] for r in rows], "s": [r[1] for r in rows]}
    )
    frame.to_csv(path)
    back = pd.read_csv(path)
    assert back["n"].tolist() == frame["n"].tolist()
    assert back["s"].tolist() == frame["s"].tolist()


@given(st.lists(st.integers(-1000, 1000), min_size=2, max_size=40))
def test_drop_duplicates_idempotent(values):
    frame = DataFrame({"v": values})
    once = frame.drop_duplicates()
    twice = once.drop_duplicates()
    assert once["v"].tolist() == twice["v"].tolist()
    assert len(once) == len(set(values))


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=30))
def test_clip_bounds(values):
    out = Series(values).clip(-10, 10)
    assert all(-10 <= v <= 10 for v in out)
