"""Unit tests for minipandas DataFrame."""

import numpy as np
import pytest

from repro.minipandas import NA, DataFrame, Series, is_missing


@pytest.fixture()
def df():
    return DataFrame(
        {
            "a": [1, 2, 3, 4],
            "b": [10.0, NA, 30.0, 40.0],
            "c": ["x", "y", "x", None],
        }
    )


class TestConstruction:
    def test_from_dict(self, df):
        assert df.shape == (4, 3)
        assert df.columns == ["a", "b", "c"]

    def test_from_list_of_dicts(self):
        out = DataFrame([{"a": 1, "b": 2}, {"a": 3}])
        assert out.shape == (2, 2)
        assert is_missing(out["b"].iloc[1])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            DataFrame({"a": [1], "b": [1, 2]})

    def test_empty(self):
        out = DataFrame()
        assert out.empty
        assert out.shape == (0, 0)

    def test_from_series_values(self):
        out = DataFrame({"a": Series([1, 2])})
        assert out["a"].tolist() == [1, 2]

    def test_column_order_argument(self):
        out = DataFrame({"a": [1], "b": [2]}, columns=["b", "a"])
        assert out.columns == ["b", "a"]

    def test_from_dataframe_copies(self, df):
        clone = DataFrame(df)
        clone["a"] = 0
        assert df["a"].tolist() == [1, 2, 3, 4]

    def test_custom_index(self):
        out = DataFrame({"a": [1, 2]}, index=["r1", "r2"])
        assert out.index.tolist() == ["r1", "r2"]

    def test_dtypes(self, df):
        assert df.dtypes["a"] == "int64"
        assert df.dtypes["b"] == "float64"
        assert df.dtypes["c"] == "object"

    def test_unsupported_data_type(self):
        with pytest.raises(TypeError):
            DataFrame(42)


class TestSelection:
    def test_column(self, df):
        assert df["a"].tolist() == [1, 2, 3, 4]
        assert df["a"].name == "a"

    def test_missing_column_raises(self, df):
        with pytest.raises(KeyError):
            df["zzz"]

    def test_column_list(self, df):
        out = df[["c", "a"]]
        assert out.columns == ["c", "a"]
        assert out.shape == (4, 2)

    def test_column_list_missing_raises(self, df):
        with pytest.raises(KeyError):
            df[["a", "zzz"]]

    def test_boolean_mask(self, df):
        out = df[df["a"] > 2]
        assert out["a"].tolist() == [3, 4]
        assert out.index.tolist() == [2, 3]

    def test_mask_with_missing_drops_row(self, df):
        out = df[df["b"] > 0]
        assert out["a"].tolist() == [1, 3, 4]

    def test_python_bool_list_mask(self, df):
        out = df[[True, False, True, False]]
        assert out["a"].tolist() == [1, 3]

    def test_contains(self, df):
        assert "a" in df
        assert "zzz" not in df

    def test_head_tail(self, df):
        assert df.head(2)["a"].tolist() == [1, 2]
        assert df.tail(1)["a"].tolist() == [4]

    def test_slice_getitem(self, df):
        assert df[1:3]["a"].tolist() == [2, 3]

    def test_select_dtypes_number(self, df):
        assert df.select_dtypes(include="number").columns == ["a", "b"]

    def test_select_dtypes_exclude(self, df):
        assert df.select_dtypes(exclude="object").columns == ["a", "b"]

    def test_get_with_default(self, df):
        assert df.get("zzz") is None
        assert df.get("a").tolist() == [1, 2, 3, 4]


class TestAssignment:
    def test_scalar_broadcast(self, df):
        df["d"] = 7
        assert df["d"].tolist() == [7, 7, 7, 7]

    def test_list_assignment(self, df):
        df["d"] = [1, 2, 3, 4]
        assert df["d"].tolist() == [1, 2, 3, 4]

    def test_list_wrong_length_raises(self, df):
        with pytest.raises(ValueError):
            df["d"] = [1, 2]

    def test_series_aligns_by_label(self, df):
        filtered = df[df["a"] > 2]["a"]
        df["d"] = filtered
        assert is_missing(df["d"].iloc[0])
        assert df["d"].iloc[2] == 3

    def test_derived_column(self, df):
        df["sum"] = df["a"] + df["b"]
        assert df["sum"].iloc[0] == 11.0
        assert is_missing(df["sum"].iloc[1])

    def test_overwrite_keeps_position(self, df):
        df["a"] = 0
        assert df.columns == ["a", "b", "c"]

    def test_delitem(self, df):
        del df["b"]
        assert df.columns == ["a", "c"]
        with pytest.raises(KeyError):
            del df["b"]

    def test_pop(self, df):
        s = df.pop("a")
        assert s.tolist() == [1, 2, 3, 4]
        assert "a" not in df

    def test_insert(self, df):
        df.insert(0, "z", 1)
        assert df.columns[0] == "z"
        with pytest.raises(ValueError):
            df.insert(0, "z", 2)

    def test_assign(self, df):
        out = df.assign(e=lambda d: d["a"] * 2)
        assert out["e"].tolist() == [2, 4, 6, 8]
        assert "e" not in df


class TestMissingData:
    def test_isnull_shape(self, df):
        nulls = df.isnull()
        assert nulls.shape == df.shape
        assert nulls["b"].tolist() == [False, True, False, False]

    def test_fillna_scalar(self, df):
        out = df.fillna(0)
        assert out["b"].iloc[1] == 0
        assert out["c"].iloc[3] == 0

    def test_fillna_dict(self, df):
        out = df.fillna({"b": -1})
        assert out["b"].iloc[1] == -1
        assert is_missing(out["c"].iloc[3])

    def test_fillna_series_of_column_stats(self, df):
        out = df.fillna(df.mean())
        assert out["b"].iloc[1] == pytest.approx((10 + 30 + 40) / 3)
        # object column has no mean -> untouched
        assert is_missing(out["c"].iloc[3])

    def test_dropna_any(self, df):
        assert df.dropna().shape == (2, 3)

    def test_dropna_subset(self, df):
        assert df.dropna(subset=["b"]).shape == (3, 3)

    def test_dropna_subset_missing_col_raises(self, df):
        with pytest.raises(KeyError):
            df.dropna(subset=["zzz"])

    def test_dropna_how_all(self):
        frame = DataFrame({"a": [NA, 1.0], "b": [NA, NA]})
        assert frame.dropna(how="all").shape == (1, 2)

    def test_dropna_thresh(self, df):
        assert df.dropna(thresh=3).shape == (2, 3)

    def test_dropna_axis_1(self, df):
        out = df.dropna(axis=1)
        assert out.columns == ["a"]

    def test_dropna_invalid_how(self, df):
        with pytest.raises(ValueError):
            df.dropna(how="bogus")

    def test_dropna_invalid_how_axis_1(self, df):
        # validated upfront, not only on the row path
        with pytest.raises(ValueError):
            df.dropna(axis=1, how="bogus")

    def test_dropna_how_and_thresh_raises(self, df):
        with pytest.raises(TypeError):
            df.dropna(how="any", thresh=1)

    def test_dropna_axis_1_how_all_zero_rows_keeps_columns(self):
        # a zero-row frame has no missing values: pandas keeps every column
        frame = DataFrame({"a": [], "b": []})
        out = frame.dropna(axis=1, how="all")
        assert out.columns == ["a", "b"]
        assert out.shape == (0, 2)

    def test_dropna_axis_1_how_all_drops_all_missing_column(self):
        frame = DataFrame({"a": [NA, NA], "b": [1, NA]})
        assert frame.dropna(axis=1, how="all").columns == ["b"]

    def test_dropna_how_all_empty_subset_keeps_rows(self):
        frame = DataFrame({"a": [NA, 1.0]})
        assert frame.dropna(how="all", subset=[]).shape == (2, 1)


class TestReductions:
    def test_mean_numeric_only(self, df):
        m = df.mean()
        assert m.index.tolist() == ["a", "b"]
        assert m["a"] == 2.5

    def test_median(self, df):
        assert df.median()["a"] == 2.5

    def test_sum(self, df):
        assert df.sum()["a"] == 10

    def test_min_max(self, df):
        assert df.min(numeric_only=True)["a"] == 1
        assert df.max(numeric_only=True)["b"] == 40.0

    def test_count(self, df):
        c = df.count()
        assert c["a"] == 4
        assert c["b"] == 3
        assert c["c"] == 3

    def test_nunique(self, df):
        assert df.nunique()["c"] == 2

    def test_mode_pads_with_na(self):
        frame = DataFrame({"a": [1, 1, 2], "b": [1, 2, 3]})
        modes = frame.mode()
        assert modes["a"].iloc[0] == 1
        assert len(modes) == 3

    def test_quantile(self, df):
        assert df.quantile(0.0)["a"] == 1.0

    def test_describe_shape(self, df):
        d = df.describe()
        assert d.columns == ["a", "b"]
        assert len(d) == 8

    def test_corr_diagonal(self, df):
        c = df.corr()
        assert c["a"].iloc[0] == 1.0


class TestDrop:
    def test_drop_column_str(self, df):
        assert df.drop("b", axis=1).columns == ["a", "c"]

    def test_drop_column_list(self, df):
        assert df.drop(["a", "c"], axis=1).columns == ["b"]

    def test_drop_columns_kwarg(self, df):
        assert df.drop(columns=["a"]).columns == ["b", "c"]

    def test_drop_missing_raises(self, df):
        with pytest.raises(KeyError):
            df.drop("zzz", axis=1)

    def test_drop_missing_ignore(self, df):
        assert df.drop("zzz", axis=1, errors="ignore").shape == (4, 3)

    def test_drop_rows_by_label(self, df):
        out = df.drop([0, 2], axis=0)
        assert out["a"].tolist() == [2, 4]

    def test_drop_index_kwarg(self, df):
        assert len(df.drop(index=[0])) == 3

    def test_drop_no_labels_raises(self, df):
        with pytest.raises(TypeError):
            df.drop()

    def test_drop_does_not_mutate(self, df):
        df.drop("a", axis=1)
        assert "a" in df.columns


class TestDeduplication:
    def test_duplicated(self):
        frame = DataFrame({"a": [1, 1, 2], "b": ["x", "x", "y"]})
        assert frame.duplicated().tolist() == [False, True, False]

    def test_duplicated_subset(self):
        frame = DataFrame({"a": [1, 1], "b": ["x", "y"]})
        assert frame.duplicated(subset=["a"]).tolist() == [False, True]

    def test_drop_duplicates(self):
        frame = DataFrame({"a": [1, 1, 2]})
        assert drop_len(frame) == 2


def drop_len(frame):
    return len(frame.drop_duplicates())


class TestLocILoc:
    def test_loc_mask(self, df):
        out = df.loc[df["a"] > 2]
        assert out["a"].tolist() == [3, 4]

    def test_loc_mask_and_column(self, df):
        out = df.loc[df["a"] > 2, "a"]
        assert out.tolist() == [3, 4]

    def test_loc_labels(self, df):
        out = df.loc[[1, 3]]
        assert out["a"].tolist() == [2, 4]

    def test_loc_single_label_row(self, df):
        row = df.loc[2]
        assert row["a"] == 3
        assert row.index.tolist() == ["a", "b", "c"]

    def test_loc_missing_label_raises(self, df):
        with pytest.raises(KeyError):
            df.loc[[99]]

    def test_loc_set_scalar_on_labels(self, df):
        df.loc[[0, 1], "a"] = 0
        assert df["a"].tolist() == [0, 0, 3, 4]

    def test_loc_set_on_mask(self, df):
        df.loc[df["a"] > 2, "a"] = -1
        assert df["a"].tolist() == [1, 2, -1, -1]

    def test_loc_set_creates_column(self, df):
        df.loc[[0], "new"] = 5
        assert df["new"].iloc[0] == 5
        assert is_missing(df["new"].iloc[1])

    def test_loc_set_full_slice(self, df):
        df.loc[:, "a"] = 9
        assert df["a"].tolist() == [9, 9, 9, 9]

    def test_loc_set_from_sampled_index(self, df):
        picked = df.sample(2, random_state=0).index
        df.loc[picked, "a"] = 0
        assert df["a"].tolist().count(0) == 2

    def test_iloc_row(self, df):
        row = df.iloc[0]
        assert row["a"] == 1

    def test_iloc_negative(self, df):
        assert df.iloc[-1]["a"] == 4

    def test_iloc_out_of_bounds(self, df):
        with pytest.raises(IndexError):
            df.iloc[10]

    def test_iloc_slice(self, df):
        assert df.iloc[1:3]["a"].tolist() == [2, 3]

    def test_iloc_row_col(self, df):
        assert df.iloc[0, 0] == 1

    def test_iloc_list(self, df):
        assert df.iloc[[0, 3]]["a"].tolist() == [1, 4]


class TestApply:
    def test_apply_columnwise_scalar(self, df):
        out = df[["a"]].apply(lambda col: col.max())
        assert out["a"] == 4

    def test_apply_columnwise_series(self, df):
        out = df[["a"]].apply(lambda col: col + 1)
        assert out["a"].tolist() == [2, 3, 4, 5]

    def test_apply_rowwise(self, df):
        out = df.apply(lambda row: row["a"] * 2, axis=1)
        assert out.tolist() == [2, 4, 6, 8]

    def test_applymap(self, df):
        out = df[["a"]].applymap(lambda v: v * 10)
        assert out["a"].tolist() == [10, 20, 30, 40]


class TestSortReshape:
    def test_sort_values(self, df):
        out = df.sort_values("a", ascending=False)
        assert out["a"].tolist() == [4, 3, 2, 1]

    def test_sort_missing_last(self, df):
        out = df.sort_values("b")
        assert is_missing(out["b"].iloc[3])

    def test_sort_multi_key(self):
        frame = DataFrame({"a": [1, 1, 0], "b": [2, 1, 5]})
        out = frame.sort_values(["a", "b"])
        assert out["b"].tolist() == [5, 1, 2]

    def test_sort_missing_col_raises(self, df):
        with pytest.raises(KeyError):
            df.sort_values("zzz")

    def test_reset_index_drop(self, df):
        out = df[df["a"] > 2].reset_index()
        assert out.index.tolist() == [0, 1]

    def test_reset_index_keep(self, df):
        out = df[df["a"] > 2].reset_index(drop=False)
        assert out["index"].tolist() == [2, 3]

    def test_set_index(self, df):
        out = df.set_index("c")
        assert "c" not in out.columns
        assert out.index.tolist()[0] == "x"

    def test_transpose_roundtrip_shape(self, df):
        assert df.T.shape == (3, 4)

    def test_rename(self, df):
        out = df.rename(columns={"a": "alpha"})
        assert out.columns == ["alpha", "b", "c"]
        assert "a" in df.columns

    def test_astype_dict(self, df):
        out = df.astype({"a": float})
        assert out.dtypes["a"] == "float64"
        assert out.dtypes["c"] == "object"


class TestIteration:
    def test_iter_gives_columns(self, df):
        assert list(df) == ["a", "b", "c"]

    def test_iterrows(self, df):
        rows = list(df.iterrows())
        assert rows[0][0] == 0
        assert rows[0][1]["a"] == 1

    def test_itertuples(self, df):
        first = next(iter(df.itertuples()))
        assert first[0] == 0
        assert first[1] == 1


class TestSampleCopy:
    def test_sample_deterministic(self, df):
        a = df.sample(2, random_state=1)["a"].tolist()
        b = df.sample(2, random_state=1)["a"].tolist()
        assert a == b

    def test_sample_preserves_labels(self, df):
        out = df.sample(2, random_state=0)
        for label in out.index:
            assert label in df.index

    def test_copy_independent(self, df):
        c = df.copy()
        c["a"] = 0
        assert df["a"].tolist() == [1, 2, 3, 4]

    def test_values_shape(self, df):
        assert df.values.shape == (4, 3)

    def test_numeric_values_dtype(self, df):
        assert df[["a", "b"]].values.dtype == np.float64

    def test_to_dict_list(self, df):
        d = df.to_dict()
        assert d["a"] == [1, 2, 3, 4]

    def test_to_dict_records(self, df):
        records = df.to_dict(orient="records")
        assert records[0]["a"] == 1

    def test_append(self, df):
        out = df.append(df)
        assert len(out) == 8
