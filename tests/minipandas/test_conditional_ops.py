"""Tests for where/mask/combine_first/to_frame and frame-level helpers,
plus extra merge/groupby hypothesis properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.minipandas as pd
from repro.minipandas import NA, DataFrame, Series, is_missing


class TestWhereMask:
    def test_where_keeps_matching(self):
        s = Series([1, 2, 3, 4])
        out = s.where(s > 2)
        assert is_missing(out.iloc[0]) and is_missing(out.iloc[1])
        assert out.iloc[2:].tolist() == [3, 4]

    def test_where_with_scalar_other(self):
        s = Series([1, 2, 3])
        assert s.where(s > 1, 0).tolist() == [0, 2, 3]

    def test_where_with_series_other(self):
        s = Series([1, 2, 3])
        other = Series([10, 20, 30])
        assert s.where(s > 2, other).tolist() == [10, 20, 3]

    def test_mask_is_inverse(self):
        s = Series([1, 2, 3])
        assert s.mask(s > 1, 0).tolist() == [1, 0, 0]

    def test_where_alignment_by_label(self):
        s = Series([1, 2], index=["a", "b"])
        condition = Series([True], index=["b"])
        out = s.where(condition, 0)
        assert out["a"] == 0 and out["b"] == 2

    def test_outlier_capping_idiom(self):
        s = Series([1.0, 2.0, 100.0])
        capped = s.mask(s > 10, 10)
        assert capped.tolist() == [1.0, 2.0, 10]


class TestCombineFirst:
    def test_fills_missing_from_other(self):
        a = Series([1.0, NA, 3.0])
        b = Series([9.0, 2.0, 9.0])
        assert a.combine_first(b).tolist() == [1.0, 2.0, 3.0]

    def test_missing_in_both_stays_missing(self):
        a = Series([NA])
        b = Series([NA])
        assert is_missing(a.combine_first(b).iloc[0])

    def test_label_alignment(self):
        a = Series([NA, 1.0], index=["x", "y"])
        b = Series([5.0], index=["x"])
        out = a.combine_first(b)
        assert out["x"] == 5.0 and out["y"] == 1.0


class TestToFrame:
    def test_uses_series_name(self):
        frame = Series([1, 2], name="v").to_frame()
        assert frame.columns == ["v"]
        assert frame["v"].tolist() == [1, 2]

    def test_explicit_name(self):
        assert Series([1], name="v").to_frame("w").columns == ["w"]

    def test_preserves_index(self):
        frame = Series([1], index=["r"], name="v").to_frame()
        assert frame.index.tolist() == ["r"]


class TestFrameHelpers:
    def test_add_prefix_suffix(self):
        frame = DataFrame({"a": [1], "b": [2]})
        assert frame.add_prefix("x_").columns == ["x_a", "x_b"]
        assert frame.add_suffix("_y").columns == ["a_y", "b_y"]

    def test_frame_isin(self):
        frame = DataFrame({"a": [1, 2], "b": [2, 3]})
        out = frame.isin([2])
        assert out["a"].tolist() == [False, True]
        assert out["b"].tolist() == [True, False]


# ------------------------------------------------------- extra properties
keys = st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=15)


@given(keys, keys)
def test_inner_join_is_subset_of_left_join(left_keys, right_keys):
    left = DataFrame({"k": left_keys, "v": list(range(len(left_keys)))})
    right = DataFrame({"k": right_keys, "w": list(range(len(right_keys)))})
    inner = pd.merge(left, right, on="k", how="inner")
    left_join = pd.merge(left, right, on="k", how="left")
    assert len(inner) <= len(left_join)
    # left join covers every left row at least once
    assert len(left_join) >= len(left)


@given(keys, keys)
def test_outer_join_covers_both_key_sets(left_keys, right_keys):
    left = DataFrame({"k": left_keys, "v": list(range(len(left_keys)))})
    right = DataFrame({"k": right_keys, "w": list(range(len(right_keys)))})
    outer = pd.merge(left, right, on="k", how="outer")
    assert set(left_keys) | set(right_keys) <= set(outer["k"].tolist())


@given(keys)
def test_groupby_mean_within_group_bounds(group_keys):
    frame = DataFrame({"k": group_keys, "v": list(range(len(group_keys)))})
    means = frame.groupby("k")["v"].mean()
    mins = frame.groupby("k")["v"].min()
    maxes = frame.groupby("k")["v"].max()
    for key in means.index:
        assert mins[key] - 1e-9 <= means[key] <= maxes[key] + 1e-9


@given(st.lists(st.integers(-50, 50), min_size=1, max_size=25))
def test_where_mask_partition(values):
    s = Series(values)
    condition = s > 0
    recombined = s.where(condition, 0) + s.mask(condition, 0)
    assert recombined.tolist() == [v if v > 0 else v for v in values]
