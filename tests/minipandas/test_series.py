"""Unit tests for minipandas Series."""

import math

import numpy as np
import pytest

from repro.minipandas import NA, Series, is_missing


class TestConstruction:
    def test_from_list(self):
        s = Series([1, 2, 3], name="x")
        assert s.tolist() == [1, 2, 3]
        assert s.name == "x"
        assert len(s) == 3

    def test_default_index_is_range(self):
        s = Series([10, 20])
        assert s.index.tolist() == [0, 1]

    def test_explicit_index(self):
        s = Series([10, 20], index=["a", "b"])
        assert s["a"] == 10
        assert s["b"] == 20

    def test_index_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Series([1, 2], index=[0])

    def test_from_series_copies_values(self):
        s1 = Series([1, 2], name="x")
        s2 = Series(s1)
        s2[0] = 99
        assert s1[0] == 1
        assert s2.name == "x"

    def test_from_dict(self):
        s = Series({"a": 1, "b": 2})
        assert s["a"] == 1
        assert s.index.tolist() == ["a", "b"]

    def test_from_numpy_array(self):
        s = Series(np.array([1.5, 2.5]))
        assert s.tolist() == [1.5, 2.5]

    def test_numpy_scalars_coerced_to_python(self):
        s = Series([np.int64(3), np.float64(1.5)])
        assert type(s[0]) is int
        assert type(s[1]) is float

    def test_empty_series(self):
        s = Series([])
        assert len(s) == 0
        assert s.empty

    def test_dtype_argument_casts(self):
        s = Series([1, 2], dtype="float64")
        assert s.dtype == "float64"
        assert s.tolist() == [1.0, 2.0]


class TestDtypeInference:
    def test_int(self):
        assert Series([1, 2]).dtype == "int64"

    def test_float(self):
        assert Series([1.0, 2]).dtype == "float64"

    def test_bool(self):
        assert Series([True, False]).dtype == "bool"

    def test_object(self):
        assert Series(["a", "b"]).dtype == "object"

    def test_int_with_none_promotes_to_float(self):
        assert Series([1, None, 3]).dtype == "float64"

    def test_string_with_none_stays_object(self):
        assert Series(["a", None]).dtype == "object"

    def test_all_missing_is_float(self):
        assert Series([None, None]).dtype == "float64"

    def test_mixed_numeric_and_string_is_object(self):
        assert Series([1, "a"]).dtype == "object"


class TestIndexing:
    def test_getitem_by_label(self):
        s = Series([5, 6], index=["x", "y"])
        assert s["y"] == 6

    def test_getitem_missing_label_raises(self):
        with pytest.raises(KeyError):
            Series([1])[99]

    def test_boolean_mask_filters(self):
        s = Series([1, 2, 3, 4])
        out = s[s > 2]
        assert out.tolist() == [3, 4]
        assert out.index.tolist() == [2, 3]

    def test_mask_preserves_labels(self):
        s = Series([1, 2, 3], index=["a", "b", "c"])
        out = s[s >= 2]
        assert out.index.tolist() == ["b", "c"]

    def test_slice(self):
        s = Series([1, 2, 3, 4])
        assert s[1:3].tolist() == [2, 3]

    def test_label_list(self):
        s = Series([1, 2, 3], index=["a", "b", "c"])
        assert s[["c", "a"]].tolist() == [3, 1]

    def test_iloc_positional(self):
        s = Series([9, 8, 7], index=["a", "b", "c"])
        assert s.iloc[2] == 7
        assert s.iloc[0:2].tolist() == [9, 8]

    def test_setitem_by_label(self):
        s = Series([1, 2], index=["a", "b"])
        s["a"] = 10
        assert s["a"] == 10

    def test_setitem_by_mask(self):
        s = Series([1, 2, 3])
        s[s > 1] = 0
        assert s.tolist() == [1, 0, 0]

    def test_head_tail(self):
        s = Series(list(range(10)))
        assert s.head(3).tolist() == [0, 1, 2]
        assert s.tail(2).tolist() == [8, 9]
        assert s.tail(0).tolist() == []


class TestArithmetic:
    def test_scalar_add(self):
        assert (Series([1, 2]) + 1).tolist() == [2, 3]

    def test_scalar_radd(self):
        assert (1 + Series([1, 2])).tolist() == [2, 3]

    def test_series_add_aligns_by_label(self):
        a = Series([1, 2], index=["x", "y"])
        b = Series([10, 20], index=["y", "x"])
        out = a + b
        assert out["x"] == 21
        assert out["y"] == 12

    def test_add_with_missing_label_gives_nan(self):
        a = Series([1, 2], index=["x", "y"])
        b = Series([10], index=["x"])
        out = a + b
        assert out["x"] == 11
        assert is_missing(out["y"])

    def test_nan_propagates(self):
        out = Series([1.0, NA]) + 1
        assert out[0] == 2.0
        assert is_missing(out[1])

    def test_sub_mul(self):
        s = Series([2, 4])
        assert (s - 1).tolist() == [1, 3]
        assert (s * 3).tolist() == [6, 12]

    def test_rsub(self):
        assert (10 - Series([1, 2])).tolist() == [9, 8]

    def test_div_by_zero_gives_nan_or_inf(self):
        out = Series([0, 1]) / 0
        assert is_missing(out[0])
        assert out[1] == math.inf

    def test_floordiv_mod_pow(self):
        s = Series([7, 9])
        assert (s // 2).tolist() == [3, 4]
        assert (s % 2).tolist() == [1, 1]
        assert (s ** 2).tolist() == [49, 81]

    def test_neg(self):
        assert (-Series([1, -2])).tolist() == [-1, 2]


class TestComparison:
    def test_gt(self):
        assert (Series([1, 5]) > 3).tolist() == [False, True]

    def test_eq_scalar(self):
        assert (Series(["a", "b"]) == "a").tolist() == [True, False]

    def test_comparison_with_missing_is_false(self):
        assert (Series([1.0, NA]) > 0).tolist() == [True, False]

    def test_type_mismatch_is_false_not_error(self):
        assert (Series(["a", 1]) > 0).tolist() == [False, True]

    def test_series_vs_series(self):
        out = Series([1, 5]) >= Series([2, 5])
        assert out.tolist() == [False, True]

    def test_bool_of_series_raises(self):
        with pytest.raises(ValueError):
            bool(Series([True]))


class TestLogical:
    def test_and_or(self):
        a = Series([True, True, False])
        b = Series([True, False, False])
        assert (a & b).tolist() == [True, False, False]
        assert (a | b).tolist() == [True, True, False]

    def test_invert(self):
        assert (~Series([True, False])).tolist() == [False, True]

    def test_xor(self):
        assert (Series([True, False]) ^ Series([True, True])).tolist() == [False, True]

    def test_any_all(self):
        assert Series([False, True]).any()
        assert not Series([False, False]).any()
        assert Series([True, True]).all()
        assert not Series([True, False]).all()


class TestMissingData:
    def test_isnull(self):
        assert Series([1.0, NA, None]).isnull().tolist() == [False, True, True]

    def test_notnull(self):
        assert Series([1.0, NA]).notnull().tolist() == [True, False]

    def test_fillna_scalar(self):
        assert Series([1.0, NA]).fillna(0).tolist() == [1.0, 0]

    def test_fillna_series_by_label(self):
        s = Series([NA, 2.0], index=["a", "b"])
        fill = Series([9.0], index=["a"])
        assert s.fillna(fill).tolist() == [9.0, 2.0]

    def test_fillna_preserves_non_missing(self):
        s = Series([5.0, NA])
        assert s.fillna(1.0)[0] == 5.0

    def test_dropna(self):
        s = Series([1.0, NA, 3.0])
        out = s.dropna()
        assert out.tolist() == [1.0, 3.0]
        assert out.index.tolist() == [0, 2]


class TestPredicates:
    def test_between_inclusive_default(self):
        s = Series([17, 18, 25, 26])
        assert s.between(18, 25).tolist() == [False, True, True, False]

    def test_between_neither(self):
        s = Series([18, 20, 25])
        assert s.between(18, 25, inclusive="neither").tolist() == [False, True, False]

    def test_between_invalid_inclusive(self):
        with pytest.raises(ValueError):
            Series([1]).between(0, 2, inclusive="bogus")

    def test_between_missing_is_false(self):
        assert Series([NA]).between(0, 100).tolist() == [False]

    def test_isin(self):
        assert Series(["a", "b", "c"]).isin(["a", "c"]).tolist() == [True, False, True]

    def test_isin_missing_is_false(self):
        assert Series([NA]).isin([NA]).tolist() == [False]

    def test_duplicated(self):
        assert Series([1, 2, 1, 1]).duplicated().tolist() == [False, False, True, True]


class TestConversion:
    def test_astype_int(self):
        assert Series([1.7, 2.2]).astype(int).tolist() == [1, 2]

    def test_astype_str(self):
        assert Series([1, 2]).astype(str).tolist() == ["1", "2"]

    def test_astype_int_with_missing_raises(self):
        with pytest.raises(ValueError):
            Series([1.0, NA]).astype(int)

    def test_astype_float_keeps_missing(self):
        out = Series([1, None]).astype(float)
        assert out[0] == 1.0
        assert is_missing(out[1])

    def test_astype_unknown_dtype(self):
        with pytest.raises(TypeError):
            Series([1]).astype("complex128")

    def test_map_dict(self):
        out = Series(["m", "f"]).map({"m": 0, "f": 1})
        assert out.tolist() == [0, 1]

    def test_map_dict_unmapped_becomes_nan(self):
        out = Series(["m", "x"]).map({"m": 0})
        assert out[0] == 0
        assert is_missing(out[1])

    def test_map_callable_skips_missing(self):
        out = Series([1.0, NA]).map(lambda v: v * 10)
        assert out[0] == 10.0
        assert is_missing(out[1])

    def test_apply_hits_missing_too(self):
        out = Series([1.0, NA]).apply(is_missing)
        assert out.tolist() == [False, True]

    def test_replace_scalar(self):
        assert Series([0, 1, 0]).replace(0, 9).tolist() == [9, 1, 9]

    def test_replace_list(self):
        assert Series([0, 1, 2]).replace([0, 1], -1).tolist() == [-1, -1, 2]

    def test_replace_dict(self):
        assert Series(["a", "b"]).replace({"a": "z"}).tolist() == ["z", "b"]

    def test_clip(self):
        assert Series([-5, 0, 5]).clip(-1, 1).tolist() == [-1, 0, 1]

    def test_clip_missing_passthrough(self):
        assert is_missing(Series([NA]).clip(0, 1)[0])

    def test_abs_round(self):
        assert Series([-1.26]).abs().round(1).tolist() == [1.3]


class TestReductions:
    def test_mean_skips_missing(self):
        assert Series([1.0, NA, 3.0]).mean() == 2.0

    def test_median(self):
        assert Series([1, 9, 2]).median() == 2.0

    def test_sum_empty_is_zero(self):
        assert Series([]).sum() == 0.0

    def test_mean_empty_is_nan(self):
        assert is_missing(Series([]).mean())

    def test_std_var(self):
        s = Series([1.0, 2.0, 3.0])
        assert s.std() == pytest.approx(1.0)
        assert s.var() == pytest.approx(1.0)

    def test_std_single_value_is_nan(self):
        assert is_missing(Series([1.0]).std())

    def test_min_max(self):
        s = Series([3, 1, 2])
        assert s.min() == 1
        assert s.max() == 3

    def test_min_all_missing_is_nan(self):
        assert is_missing(Series([NA, NA]).min())

    def test_count(self):
        assert Series([1.0, NA, 2.0]).count() == 2

    def test_quantile(self):
        assert Series(list(range(101))).quantile(0.5) == 50.0

    def test_mode_single(self):
        assert Series([1, 1, 2]).mode().tolist() == [1]

    def test_mode_tie_sorted(self):
        assert Series([2, 2, 1, 1]).mode().tolist() == [1, 2]

    def test_idxmax_idxmin(self):
        s = Series([5, 1, 9], index=["a", "b", "c"])
        assert s.idxmax() == "c"
        assert s.idxmin() == "b"

    def test_idxmax_all_missing_raises(self):
        with pytest.raises(ValueError):
            Series([NA]).idxmax()

    def test_nunique(self):
        assert Series([1, 1, 2, NA]).nunique() == 2
        assert Series([1, 1, 2, NA]).nunique(dropna=False) == 3

    def test_unique_preserves_order(self):
        assert Series([3, 1, 3, 2]).unique() == [3, 1, 2]

    def test_bool_values_count_as_numeric(self):
        assert Series([True, False, True]).mean() == pytest.approx(2 / 3)


class TestValueCounts:
    def test_counts_descending(self):
        vc = Series(["a", "b", "a"]).value_counts()
        assert vc.index.tolist() == ["a", "b"]
        assert vc.tolist() == [2, 1]

    def test_normalize(self):
        vc = Series(["a", "b", "a", "a"]).value_counts(normalize=True)
        assert vc.tolist() == [0.75, 0.25]

    def test_dropna_default(self):
        vc = Series(["a", NA]).value_counts()
        assert vc.tolist() == [1]


class TestSorting:
    def test_sort_values_ascending(self):
        s = Series([3, 1, 2])
        assert s.sort_values().tolist() == [1, 2, 3]

    def test_sort_values_descending(self):
        assert Series([3, 1, 2]).sort_values(ascending=False).tolist() == [3, 2, 1]

    def test_sort_puts_missing_last(self):
        out = Series([3.0, NA, 1.0]).sort_values()
        assert out.tolist()[:2] == [1.0, 3.0]
        assert is_missing(out.tolist()[2])

    def test_sort_keeps_labels(self):
        out = Series([3, 1], index=["a", "b"]).sort_values()
        assert out.index.tolist() == ["b", "a"]


class TestSample:
    def test_sample_n(self):
        s = Series(list(range(100)))
        out = s.sample(10, random_state=0)
        assert len(out) == 10
        assert len(set(out.index.tolist())) == 10

    def test_sample_deterministic(self):
        s = Series(list(range(50)))
        a = s.sample(5, random_state=3).tolist()
        b = s.sample(5, random_state=3).tolist()
        assert a == b

    def test_sample_frac(self):
        assert len(Series(list(range(10))).sample(frac=0.5, random_state=0)) == 5

    def test_sample_caps_at_length(self):
        assert len(Series([1, 2]).sample(10, random_state=0)) == 2


class TestMisc:
    def test_copy_is_independent(self):
        s = Series([1, 2])
        c = s.copy()
        c[0] = 99
        assert s[0] == 1

    def test_item(self):
        assert Series([7]).item() == 7
        with pytest.raises(ValueError):
            Series([1, 2]).item()

    def test_rename(self):
        assert Series([1], name="a").rename("b").name == "b"

    def test_corr_perfect(self):
        a = Series([1.0, 2.0, 3.0])
        assert a.corr(a * 2) == pytest.approx(1.0)

    def test_corr_constant_is_nan(self):
        assert is_missing(Series([1.0, 1.0, 1.0]).corr(Series([1.0, 2.0, 3.0])))

    def test_corr_skips_missing_pairs(self):
        a = Series([1.0, 2.0, NA, 4.0])
        b = Series([2.0, 4.0, 5.0, 8.0])
        assert a.corr(b) == pytest.approx(1.0)

    def test_values_numeric_dtype(self):
        assert Series([1, 2]).values.dtype == np.int64

    def test_values_float_with_nan(self):
        values = Series([1.0, NA]).values
        assert values.dtype == np.float64
        assert np.isnan(values[1])

    def test_describe_keys(self):
        d = Series([1.0, 2.0, 3.0]).describe()
        assert d.index.tolist() == ["count", "mean", "std", "min", "25%", "50%", "75%", "max"]

    def test_skew_symmetric_is_near_zero(self):
        assert abs(Series([1.0, 2.0, 3.0, 4.0, 5.0]).skew()) < 1e-9


class TestIndexSharing:
    """Label-preserving ops must share the immutable Index, not rebuild it."""

    def test_derived_ops_share_index_object(self):
        s = Series([1.0, NA, 3.0, 4.0], index=["a", "b", "c", "d"], name="x")
        derived = [
            s + 1,
            s * 2,
            s > 2,
            ~(s > 2),
            s.isnull(),
            s.notnull(),
            s.fillna(0.0),
            s.between(1, 3),
            s.isin([1.0, 3.0]),
            s.duplicated(),
            s.astype(float),
            s.map({1.0: 10.0}),
            s.apply(lambda v: v),
            s.replace(1.0, 9.0),
            s.clip(lower=2.0),
            s.abs(),
            s.round(1),
            s.shift(1),
            s.cumsum(),
            s.cummax(),
            s.cummin(),
            s.rank(),
            s.ffill(),
            s.bfill(),
            s.interpolate(),
            s.where(s > 2, 0.0),
            s.mask(s > 2, 0.0),
            s.combine_first(Series([9.0] * 4, index=["a", "b", "c", "d"])),
            s.copy(),
        ]
        for out in derived:
            assert out._index is s._index

    def test_constructor_from_series_shares_index(self):
        s = Series([1, 2], index=["a", "b"], name="x")
        assert Series(s)._index is s._index
        assert Series(s, index=["p", "q"])._index is not s._index

    def test_label_changing_ops_do_not_share(self):
        s = Series([3, 1, 2], index=["a", "b", "c"])
        assert s.sort_values()._index is not s._index
        assert s.dropna().index.tolist() == ["a", "b", "c"]

    def test_copy_stays_independent(self):
        s = Series([1, 2, 3], index=["a", "b", "c"], name="x")
        dup = s.copy()
        dup["a"] = 99
        assert s["a"] == 1 and dup["a"] == 99
        assert dup._index is s._index

    def test_binary_op_coerces_numpy_scalars(self):
        out = Series([1, 2]) + np.int64(1)
        assert all(type(v) is int for v in out.tolist())
