"""Integration tests for the asyncio request engine.

Each test runs a real server (dedicated thread + event loop, unix
socket under ``tmp_path``) and talks to it through the blocking client —
the exact deployment shape of ``repro serve`` / ``repro client``.
"""

import time

import pytest

from repro.corpus import clear_corpus_cache
from repro.sandbox import kill_worker_pool
from repro.server import ServerClient, ServerConfig, ServerError, ServerThread

#: tiny search budget: these tests exercise serving, not search quality
TINY = {"seq": 2, "beam_size": 1, "sample_rows": 50}


@pytest.fixture(autouse=True)
def fresh_state():
    clear_corpus_cache()
    yield
    kill_worker_pool()
    clear_corpus_cache()


def _server(tmp_path, **overrides):
    return ServerThread(
        ServerConfig(socket_path=str(tmp_path / "repro.sock"), **overrides)
    )


class TestSmoke:
    def test_one_request_and_clean_drain_within_hard_timeout(
        self, tmp_path, diabetes_corpus, alex_script, diabetes_dir
    ):
        """Tier-1 smoke: serve on a unix socket, answer one request,
        drain cleanly — all inside a hard wall-clock budget."""
        started = time.monotonic()
        handle = _server(tmp_path).start(timeout=30.0)
        sock = handle.config.socket_path
        try:
            with ServerClient(socket_path=sock, timeout=60.0) as client:
                assert client.ping()
                result = client.score(
                    script=alex_script, corpus=diabetes_corpus, config=TINY
                )
                assert result["score"] > 0
        finally:
            handle.stop(timeout=30.0)
        assert time.monotonic() - started < 60.0
        import os

        assert not os.path.exists(sock)  # drain unlinked the socket

    def test_tcp_listener(self, diabetes_corpus, alex_script):
        handle = ServerThread(ServerConfig(host="127.0.0.1", port=0)).start()
        try:
            host, port = handle.server.tcp_address
            with ServerClient(host=host, port=port, timeout=60.0) as client:
                result = client.score(
                    script=alex_script, corpus=diabetes_corpus, config=TINY
                )
                assert result["score"] > 0
        finally:
            handle.stop()


class TestControlOps:
    def test_stats_counts_jobs(self, tmp_path, diabetes_corpus, alex_script):
        with _server(tmp_path) as handle:
            with ServerClient(socket_path=handle.config.socket_path) as client:
                client.score(script=alex_script, corpus=diabetes_corpus, config=TINY)
                stats = client.stats()
        assert stats["jobs_total"] == 1
        assert stats["jobs"] == {"score": 1}
        assert stats["admitted"] == 1
        assert stats["warm_misses"] == 1

    def test_unknown_op_is_bad_request(self, tmp_path):
        with _server(tmp_path) as handle:
            with ServerClient(socket_path=handle.config.socket_path) as client:
                response = client.request({"op": "evaporate"})
        assert response["ok"] is False
        assert response["error"]["kind"] == "bad_request"
        assert response["error"]["retryable"] is False

    def test_malformed_line_gets_an_error_not_a_hangup(self, tmp_path):
        with _server(tmp_path) as handle:
            with ServerClient(socket_path=handle.config.socket_path) as client:
                client._sock.sendall(b"this is not json\n")
                response = client._read_response()
                assert response["error"]["kind"] == "bad_request"
                assert client.ping()  # connection survives

    def test_shutdown_op_drains(self, tmp_path):
        handle = _server(tmp_path).start()
        with ServerClient(socket_path=handle.config.socket_path) as client:
            assert client.shutdown()
        handle._thread.join(30.0)
        assert not handle._thread.is_alive()


class TestWarmAndCoalesced:
    def test_same_shape_requests_hit_warm_state(
        self, tmp_path, diabetes_corpus, alex_script
    ):
        with _server(tmp_path) as handle:
            with ServerClient(socket_path=handle.config.socket_path) as client:
                scores = [
                    client.score(
                        script=alex_script, corpus=diabetes_corpus, config=TINY
                    )["score"]
                    for _ in range(4)
                ]
                stats = client.stats()
        assert len(set(scores)) == 1
        assert stats["warm_misses"] == 1  # first request builds
        assert stats["warm_hits"] == 3  # the rest reuse it

    def test_pipelined_same_corpus_jobs_coalesce(
        self, tmp_path, diabetes_corpus, alex_script, diabetes_dir
    ):
        """A slow first job holds the wave thread while the rest of the
        batch queues up behind it — the next wave serves them together."""
        with _server(tmp_path) as handle:
            with ServerClient(socket_path=handle.config.socket_path) as client:
                slow = client.submit(
                    {
                        "op": "standardize",
                        "params": {
                            "script": alex_script,
                            "corpus": diabetes_corpus,
                            "data_dir": diabetes_dir,
                            "config": TINY,
                        },
                    }
                )
                fast = client.submit_jobs(
                    [
                        {
                            "op": "score",
                            "params": {
                                "script": alex_script,
                                "corpus": diabetes_corpus,
                                "config": TINY,
                            },
                        }
                        for _ in range(5)
                    ]
                )
                responses = client.collect_jobs([slow] + fast)
                stats = client.stats()
        assert all(r["ok"] for r in responses)
        assert stats["jobs_total"] == 6
        assert stats["coalesced_waves"] >= 1
        assert stats["coalesced_jobs"] >= 2
        assert stats["waves"] < 6  # strictly fewer dispatches than jobs

    def test_deadline_expired_job_is_retryable(
        self, tmp_path, diabetes_corpus, alex_script
    ):
        with _server(tmp_path) as handle:
            with ServerClient(socket_path=handle.config.socket_path) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.score(
                        script=alex_script,
                        corpus=diabetes_corpus,
                        config=TINY,
                        deadline_s=1e-7,
                    )
                stats = client.stats()
        assert excinfo.value.kind == "deadline"
        assert excinfo.value.retryable is True
        assert stats["deadline_misses"] == 1


class TestErrorVerdicts:
    def test_missing_script_is_bad_request(self, tmp_path, diabetes_corpus):
        with _server(tmp_path) as handle:
            with ServerClient(socket_path=handle.config.socket_path) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.score(corpus=diabetes_corpus)
        assert excinfo.value.kind == "bad_request"
        assert excinfo.value.retryable is False

    def test_unparseable_input_script_is_bad_request(
        self, tmp_path, diabetes_corpus
    ):
        with _server(tmp_path) as handle:
            with ServerClient(socket_path=handle.config.socket_path) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.score(
                        script="not python (((", corpus=diabetes_corpus, config=TINY
                    )
        assert excinfo.value.kind == "bad_request"

    def test_audit_mode_serves_verified_results(
        self, tmp_path, diabetes_corpus, alex_script
    ):
        """verify_server end to end: the response only ships after a cold
        process replayed it byte-identically."""
        with _server(tmp_path, audit=True) as handle:
            with ServerClient(
                socket_path=handle.config.socket_path, timeout=300.0
            ) as client:
                result = client.score(
                    script=alex_script, corpus=diabetes_corpus, config=TINY
                )
                stats = client.stats()
        assert result["score"] > 0
        assert stats["audits"] == 1
        assert stats["audit_failures"] == 0
