"""Request-path parity: warm server responses == serial one-shot runs.

The server's contract is that warmth is invisible: N interleaved jobs —
mixed ops, shared and distinct corpora, coalesced into waves against
registry-pinned systems — must produce byte-identical canonical JSON to
running each job alone against empty caches.  The second test holds
that under fault injection: shard workers are SIGKILLed mid-batch while
a parallel-path job runs, exercising the engine's died-worker
re-dispatch on the serving path.
"""

import os
import signal
import threading
import time

import pytest

from repro.corpus import clear_corpus_cache
from repro.sandbox import kill_worker_pool
from repro.server import ServerClient, ServerConfig, ServerThread
from repro.server.jobs import normalize_job
from repro.server.oneshot import run_oneshot
from repro.server.protocol import canonical, parity_payload

TINY = {"seq": 2, "beam_size": 1, "sample_rows": 50}


@pytest.fixture(autouse=True)
def fresh_state():
    clear_corpus_cache()
    yield
    kill_worker_pool()
    clear_corpus_cache()


def _variant_corpus(diabetes_corpus):
    """A second, distinct corpus (different content address)."""
    return [script.replace("SkinThickness", "Glucose") for script in diabetes_corpus]


def _mixed_requests(diabetes_corpus, alex_script, diabetes_dir):
    corpora = [diabetes_corpus, _variant_corpus(diabetes_corpus)]
    requests = []
    for position in range(12):
        corpus = corpora[position % 2]
        op = ["score", "standardize", "explain", "detect_leakage"][position % 4]
        params = {"script": alex_script, "corpus": corpus, "config": dict(TINY)}
        if op != "score":
            params["data_dir"] = diabetes_dir
        requests.append({"id": position, "op": op, "params": params})
    return requests


def _cold_replay(message):
    """One job, serially, against empty caches — the ground truth."""
    job = normalize_job(message)
    clear_corpus_cache()
    kill_worker_pool()
    return run_oneshot(job, request_id=message["id"])


class TestInterleavedParity:
    def test_mixed_pipelined_jobs_match_serial_oneshot(
        self, tmp_path, diabetes_corpus, alex_script, diabetes_dir
    ):
        requests = _mixed_requests(diabetes_corpus, alex_script, diabetes_dir)
        config = ServerConfig(socket_path=str(tmp_path / "repro.sock"))
        with ServerThread(config) as handle:
            with ServerClient(
                socket_path=handle.config.socket_path, timeout=600.0
            ) as client:
                ids = client.submit_jobs(requests)
                warm = client.collect_jobs(ids)
                stats = client.stats()
        # the run actually exercised warm reuse, not 12 cold builds
        assert stats["warm_hits"] > 0
        for message, response in zip(requests, warm):
            cold = _cold_replay(message)
            assert canonical(parity_payload(response)) == canonical(
                parity_payload(cold)
            ), f"request {message['id']} ({message['op']}) diverged"


class TestParityUnderRespawn:
    def test_worker_kills_mid_batch_do_not_change_results(
        self, tmp_path, diabetes_corpus, alex_script, diabetes_dir
    ):
        """SIGKILL shard workers while the server's parallel path runs:
        died workers re-dispatch their window, so the response must stay
        byte-identical to an unharassed serial replay."""
        from repro.sandbox import shards

        parallel = {**TINY, "parallel_workers": 2}
        requests = [
            {
                "id": position,
                "op": "standardize",
                "params": {
                    "script": alex_script,
                    "corpus": diabetes_corpus,
                    "data_dir": diabetes_dir,
                    "config": parallel,
                },
            }
            for position in range(3)
        ]

        stop = threading.Event()

        def killer():
            while not stop.is_set():
                engine = shards._ENGINE
                if engine is not None:
                    pids = [pid for pid in engine.worker_pids() if pid]
                    if pids:
                        try:
                            os.kill(pids[0], signal.SIGKILL)
                        except (ProcessLookupError, PermissionError):
                            pass
                time.sleep(0.05)

        thread = threading.Thread(target=killer, daemon=True)
        config = ServerConfig(socket_path=str(tmp_path / "repro.sock"))
        thread.start()
        try:
            with ServerThread(config) as handle:
                with ServerClient(
                    socket_path=handle.config.socket_path, timeout=600.0
                ) as client:
                    ids = client.submit_jobs(requests)
                    warm = client.collect_jobs(ids)
        finally:
            stop.set()
            thread.join(5.0)
        for message, response in zip(requests, warm):
            assert response["ok"], response
            cold = _cold_replay(message)
            assert canonical(parity_payload(response)) == canonical(
                parity_payload(cold)
            ), f"request {message['id']} diverged under respawn injection"
