"""Unit tests: wire protocol, job canonicalization, and the job queue."""

import pytest

from repro.core import LSConfig
from repro.corpus import clear_corpus_cache, corpus_key
from repro.server import protocol
from repro.server.jobs import (
    JobError,
    normalize_job,
    resolve_job,
    system_key,
)
from repro.server.queue import Job, JobQueue, QueueFullError


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_corpus_cache()
    yield
    clear_corpus_cache()


class TestProtocol:
    def test_roundtrip(self):
        message = {"id": 7, "op": "ping", "params": {"b": 1, "a": 2}}
        assert protocol.decode(protocol.encode(message)) == message

    def test_encode_is_canonical_one_line(self):
        wire = protocol.encode({"b": 1, "a": 2})
        assert wire == b'{"a":2,"b":1}\n'

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ValueError):
            protocol.decode(b"[1,2,3]\n")

    def test_error_response_derives_retryable(self):
        retryable = protocol.error_response(1, "queue_full", "full")
        terminal = protocol.error_response(1, "bad_request", "nope")
        assert retryable["error"]["retryable"] is True
        assert terminal["error"]["retryable"] is False

    def test_parity_payload_strips_serving_detail(self):
        ok = protocol.ok_response(3, {"score": 1.0}, meta={"warm": True})
        assert protocol.parity_payload(ok) == {
            "id": 3,
            "ok": True,
            "result": {"score": 1.0},
        }
        err = protocol.error_response(4, "queue_full", "full", meta={"x": 1})
        assert protocol.parity_payload(err) == {
            "id": 4,
            "ok": False,
            "error": {"kind": "queue_full", "message": "full"},
        }


class TestNormalizeJob:
    def _raw(self, corpus, **params):
        return {
            "op": params.pop("op", "score"),
            "params": {"script": "df = 1", "corpus": corpus, **params},
        }

    def test_canonical_job_is_self_contained(self, diabetes_corpus):
        job = normalize_job(self._raw(diabetes_corpus))
        assert job["op"] == "score"
        assert job["params"]["corpus"] == diabetes_corpus
        assert job["params"]["intent"] is None  # score has no intent
        assert job["params"]["config"] == {}

    def test_default_intent_is_table_jaccard(self, diabetes_corpus):
        job = normalize_job(self._raw(diabetes_corpus, op="standardize"))
        assert job["params"]["intent"] == {"kind": "table_jaccard", "tau": 0.9}

    def test_target_shorthand_switches_intent(self, diabetes_corpus):
        job = normalize_job(
            self._raw(diabetes_corpus, op="standardize", target="Outcome")
        )
        assert job["params"]["intent"] == {
            "kind": "model_performance",
            "target": "Outcome",
            "tau": 1.0,
        }

    def test_rejects_unknown_op(self, diabetes_corpus):
        with pytest.raises(JobError) as excinfo:
            normalize_job({"op": "evaporate", "params": {}})
        assert excinfo.value.kind == "bad_request"

    def test_rejects_missing_script(self, diabetes_corpus):
        with pytest.raises(JobError):
            normalize_job({"op": "score", "params": {"corpus": diabetes_corpus}})

    def test_rejects_unknown_config_field(self, diabetes_corpus):
        with pytest.raises(JobError) as excinfo:
            normalize_job(self._raw(diabetes_corpus, config={"warp_speed": 9}))
        assert "warp_speed" in str(excinfo.value)

    def test_rejects_invalid_config_value(self, diabetes_corpus):
        with pytest.raises(JobError):
            normalize_job(self._raw(diabetes_corpus, config={"beam_size": 0}))

    def test_corpus_dir_resolved_at_admission(self, tmp_path):
        (tmp_path / "a.py").write_text("df = 1\n")
        job = normalize_job(
            {
                "op": "score",
                "params": {"script": "df = 1", "corpus_dir": str(tmp_path)},
            }
        )
        assert job["params"]["corpus"] == ["df = 1\n"]

    def test_empty_corpus_dir_is_bad_request(self, tmp_path):
        with pytest.raises(JobError) as excinfo:
            normalize_job(
                {
                    "op": "score",
                    "params": {"script": "df = 1", "corpus_dir": str(tmp_path)},
                }
            )
        assert excinfo.value.kind == "bad_request"


class TestSystemKey:
    def test_same_inputs_share_a_key(self, diabetes_corpus):
        raw = {
            "op": "standardize",
            "params": {"script": "df = 1", "corpus": diabetes_corpus},
        }
        assert system_key(normalize_job(raw)) == system_key(normalize_job(raw))

    def test_key_prefix_is_the_corpus_key(self, diabetes_corpus):
        job = normalize_job(
            {"op": "score", "params": {"script": "df = 1", "corpus": diabetes_corpus}}
        )
        resolved = resolve_job(job)
        assert resolved.corpus_key == corpus_key(diabetes_corpus)
        assert resolved.key.startswith(resolved.corpus_key + ":")

    def test_intent_and_config_change_the_shape_half(self, diabetes_corpus):
        base = normalize_job(
            {
                "op": "standardize",
                "params": {"script": "df = 1", "corpus": diabetes_corpus},
            }
        )
        other = normalize_job(
            {
                "op": "standardize",
                "params": {
                    "script": "df = 1",
                    "corpus": diabetes_corpus,
                    "config": {"seq": 2},
                },
            }
        )
        assert system_key(base) != system_key(other)
        assert resolve_job(base).corpus_key == resolve_job(other).corpus_key

    def test_script_does_not_change_the_key(self, diabetes_corpus):
        """Warm state is per (corpus, shape), never per input script."""
        first = normalize_job(
            {"op": "score", "params": {"script": "df = 1", "corpus": diabetes_corpus}}
        )
        second = normalize_job(
            {"op": "score", "params": {"script": "df = 2", "corpus": diabetes_corpus}}
        )
        assert system_key(first) == system_key(second)

    def test_resolved_config_applies_overrides(self, diabetes_corpus):
        job = normalize_job(
            {
                "op": "score",
                "params": {
                    "script": "df = 1",
                    "corpus": diabetes_corpus,
                    "config": {"seq": 2, "beam_size": 1},
                },
            }
        )
        resolved = resolve_job(job)
        assert resolved.config.seq == 2
        assert resolved.config.beam_size == 1
        assert resolved.config.sample_rows == LSConfig().sample_rows


def _job(request_id, group="g1", deadline_s=None):
    return Job(
        request_id=request_id,
        job={"op": "score", "params": {}},
        group_key=group,
        system_key=group + ":shape",
        future=None,
        deadline_s=deadline_s,
    )


class TestJobQueue:
    def test_bounded_admission(self):
        queue = JobQueue(limit=2)
        queue.admit(_job(1))
        queue.admit(_job(2))
        with pytest.raises(QueueFullError):
            queue.admit(_job(3))
        assert queue.depth == 2
        assert queue.peak_depth == 2

    def test_wave_coalesces_one_group_in_arrival_order(self):
        queue = JobQueue()
        queue.admit(_job(1, "a"))
        queue.admit(_job(2, "b"))
        queue.admit(_job(3, "a"))
        wave = queue.take_wave(max_wave=8)
        assert [j.request_id for j in wave] == [1, 3]  # group a, FIFO
        assert [j.request_id for j in queue.take_wave(8)] == [2]
        assert queue.take_wave(8) == []

    def test_oldest_head_wins_across_groups(self):
        queue = JobQueue()
        queue.admit(_job(1, "a"))
        queue.admit(_job(2, "b"))
        queue.take_wave(8)  # serves group a
        queue.admit(_job(3, "a"))
        # b's head (seq 2) has waited longer than a's new head (seq 3)
        assert [j.request_id for j in queue.take_wave(8)] == [2]

    def test_wave_limit_caps_a_deep_backlog(self):
        queue = JobQueue()
        for request_id in range(5):
            queue.admit(_job(request_id, "a"))
        assert len(queue.take_wave(max_wave=3)) == 3
        assert queue.depth == 2

    def test_pop_expired_removes_only_overdue_jobs(self):
        queue = JobQueue()
        queue.admit(_job(1, deadline_s=1e-9))
        queue.admit(_job(2))  # no deadline
        queue.admit(_job(3, deadline_s=3600.0))
        expired = queue.pop_expired()
        assert [j.request_id for j in expired] == [1]
        assert queue.depth == 2

    def test_drain_returns_everything_oldest_first(self):
        queue = JobQueue()
        queue.admit(_job(1, "a"))
        queue.admit(_job(2, "b"))
        queue.admit(_job(3, "a"))
        drained = queue.drain()
        assert [j.request_id for j in drained] == [1, 2, 3]
        assert queue.depth == 0
        assert queue.take_wave(8) == []
