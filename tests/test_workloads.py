"""Tests for the synthetic competition workloads (Section 6.1.3 stand-in)."""

import numpy as np
import pytest

from repro.lang import CorpusVocabulary, lemmatize
from repro.sandbox import run_script
from repro.workloads import (
    SLOT_POOLS,
    SPECS,
    StepSlot,
    build_competition,
    competition_names,
)
from repro.workloads.datasets import (
    generate_house,
    generate_medical,
    generate_nlp,
    generate_sales,
    generate_spaceship,
    generate_titanic,
)
from repro.workloads.schemas import CompetitionSpec


class TestSpecs:
    def test_six_competitions(self):
        assert sorted(competition_names()) == [
            "house", "medical", "nlp", "sales", "spaceship", "titanic",
        ]

    def test_table3_corpus_size_ordering(self):
        """Titanic has the most scripts, NLP close to fewest (Table 3)."""
        sizes = {name: SPECS[name].n_scripts for name in SPECS}
        assert sizes["titanic"] == 62
        assert sizes["house"] == 49
        assert sizes["medical"] == 47
        assert sizes["spaceship"] == 38
        assert sizes["sales"] == 26
        assert sizes["nlp"] == 24

    def test_sales_is_largest_data(self):
        rows = {name: SPECS[name].n_rows for name in SPECS}
        assert rows["sales"] == max(rows.values())

    def test_targets_and_tasks(self):
        assert SPECS["titanic"].target == "Survived"
        assert SPECS["house"].task == "regression"
        assert SPECS["sales"].task == "regression"
        assert SPECS["medical"].task == "classification"

    def test_slot_probability_validation(self):
        with pytest.raises(ValueError):
            StepSlot("impute", (("df = df.dropna()", 0.7), ("df = df.fillna(0)", 0.5)))

    def test_slot_group_validation(self):
        with pytest.raises(ValueError):
            StepSlot("bogus", (("x = 1", 0.5),))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CompetitionSpec(
                name="x", target="y", task="clustering", n_rows=100, n_scripts=5,
                data_file="t.csv", generator=generate_medical,
                slots=(), rare_steps=(),
            )


class TestDataGenerators:
    @pytest.mark.parametrize(
        "generator,target,n",
        [
            (generate_titanic, "Survived", 300),
            (generate_house, "SalePrice", 300),
            (generate_nlp, "target", 300),
            (generate_spaceship, "Transported", 300),
            (generate_medical, "Outcome", 300),
            (generate_sales, "item_cnt_day", 300),
        ],
    )
    def test_schema_and_size(self, generator, target, n):
        frame = generator(np.random.default_rng(0), n)
        assert len(frame) == n
        assert target in frame.columns

    def test_deterministic_given_seed(self):
        a = generate_medical(np.random.default_rng(7), 100)
        b = generate_medical(np.random.default_rng(7), 100)
        assert a["Glucose"].tolist() == b["Glucose"].tolist()

    def test_titanic_missing_structure(self):
        frame = generate_titanic(np.random.default_rng(0), 500)
        age_missing = frame["Age"].isnull().tolist().count(True) / 500
        cabin_missing = frame["Cabin"].isnull().tolist().count(True) / 500
        assert 0.1 < age_missing < 0.3
        assert cabin_missing > 0.6

    def test_titanic_target_learnable(self):
        from repro.ml import evaluate_downstream

        frame = generate_titanic(np.random.default_rng(0), 600)
        usable = frame.drop(["Name", "Ticket", "Cabin", "PassengerId"], axis=1)
        acc = evaluate_downstream(usable, "Survived").accuracy
        assert acc > 0.6

    def test_house_price_correlates_with_area(self):
        frame = generate_house(np.random.default_rng(0), 500)
        assert frame["SalePrice"].corr(frame["GrLivArea"]) > 0.5

    def test_sales_has_returns_and_outliers(self):
        frame = generate_sales(np.random.default_rng(0), 5000)
        assert (frame["item_cnt_day"] < 0).any()
        assert frame["item_price"].isnull().any()


class TestBuildCompetition:
    def test_build_writes_data_and_scripts(self, tmp_path):
        corpus = build_competition("medical", str(tmp_path), seed=0, n_scripts=6)
        assert len(corpus.scripts) == 6
        assert len(corpus.votes) == 6
        import os

        assert os.path.exists(os.path.join(corpus.data_dir, "train.csv"))

    def test_unknown_name_raises(self, tmp_path):
        with pytest.raises(KeyError):
            build_competition("bogus", str(tmp_path))

    def test_deterministic_rebuild(self, tmp_path):
        a = build_competition("nlp", str(tmp_path / "a"), seed=3, n_scripts=5)
        b = build_competition("nlp", str(tmp_path / "b"), seed=3, n_scripts=5)
        assert a.scripts == b.scripts
        assert a.votes == b.votes

    def test_different_seeds_differ(self, tmp_path):
        a = build_competition("nlp", str(tmp_path / "a"), seed=1, n_scripts=5)
        b = build_competition("nlp", str(tmp_path / "b"), seed=2, n_scripts=5)
        assert a.scripts != b.scripts

    def test_every_script_executes(self, medical_competition):
        for script in medical_competition.scripts:
            result = run_script(
                script, data_dir=medical_competition.data_dir, sample_rows=100
            )
            assert result.ok, f"{result.error}\n{script}"
            assert result.output is not None

    def test_scripts_parse_and_lemmatize(self, medical_competition):
        for script in medical_competition.scripts:
            assert lemmatize(script)

    def test_corpus_has_majority_and_minority_steps(self, medical_competition):
        vocab = CorpusVocabulary.from_scripts(medical_competition.scripts)
        freq = [
            vocab.statement_frequency(sig) for sig in vocab.ngram_counts
        ]
        assert max(freq) > 0.5  # a common core exists
        assert min(freq) < 0.3  # and a tail exists

    def test_votes_correlate_with_majority_coverage(self, tmp_path):
        corpus = build_competition("medical", str(tmp_path), seed=0, n_scripts=30)
        assert max(corpus.votes) > min(corpus.votes)


class TestCorpusScenarios:
    def test_leave_one_out(self, medical_competition):
        pairs = list(medical_competition.leave_one_out())
        assert len(pairs) == len(medical_competition.scripts)
        user, rest = pairs[0]
        assert user not in rest or medical_competition.scripts.count(user) > 1
        assert len(rest) == len(medical_competition.scripts) - 1

    def test_small_corpus(self, medical_competition):
        small = medical_competition.small(n=5, seed=0)
        assert len(small.scripts) == 5
        assert small.name.endswith("-small")
        for script in small.scripts:
            assert script in medical_competition.scripts

    def test_small_corpus_deterministic(self, medical_competition):
        assert medical_competition.small(5, seed=1).scripts == \
               medical_competition.small(5, seed=1).scripts

    def test_low_ranked_corpus(self, medical_competition):
        low = medical_competition.low_ranked(fraction=0.3)
        threshold = max(low.votes)
        others = [
            v for v in medical_competition.votes if v not in low.votes
        ]
        assert len(low.scripts) < len(medical_competition.scripts)
        assert threshold <= max(medical_competition.votes)

    def test_low_ranked_requires_votes(self, medical_competition):
        from repro.workloads import ScriptCorpus

        bare = ScriptCorpus(
            name="x", target="t", task="classification",
            data_dir=medical_competition.data_dir, data_file="train.csv",
            scripts=list(medical_competition.scripts),
        )
        with pytest.raises(ValueError):
            bare.low_ranked()

    def test_votes_length_validated(self, medical_competition):
        from repro.workloads import ScriptCorpus

        with pytest.raises(ValueError):
            ScriptCorpus(
                name="x", target="t", task="classification",
                data_dir=medical_competition.data_dir, data_file="train.csv",
                scripts=["a", "b"], votes=[1],
            )
