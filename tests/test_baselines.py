"""Tests for the competing methods (Section 6.1.1)."""

import pytest

from repro.baselines import (
    AutoSuggest,
    AutoTables,
    SyntaxCleaner,
    featurize_table,
    gpt35,
    gpt4,
    predict_next_operator,
    relationality_score,
    synthesize_reshape_program,
)
from repro.core import percent_improvement
from repro.core.entropy import RelativeEntropyScorer
from repro.lang import CorpusVocabulary, lemmatize, parse_script
from repro.minipandas import DataFrame


class TestSyntaxCleaner:
    def test_normalizes_quotes_and_spacing(self):
        out = SyntaxCleaner().rewrite('x  =  "hello"', [])
        assert out == "x = 'hello'"

    def test_removes_duplicate_imports(self):
        out = SyntaxCleaner().rewrite(
            "import pandas as pd\nimport pandas as pd\nx = 1", []
        )
        assert out.count("import pandas as pd") == 1

    def test_folds_constants(self):
        assert SyntaxCleaner().rewrite("x = 2 + 3", []) == "x = 5"
        assert SyntaxCleaner().rewrite("x = 2 * 3 - 1", []) == "x = 5"

    def test_leaves_broken_code_untouched(self):
        assert SyntaxCleaner().rewrite("x ===", []) == "x ==="

    def test_zero_re_improvement(self, diabetes_corpus):
        """The paper's Table 5 row: Sourcery improves RE by exactly 0%."""
        vocab = CorpusVocabulary.from_scripts(diabetes_corpus[1:])
        scorer = RelativeEntropyScorer(vocab)
        script = diabetes_corpus[0]
        cleaned = SyntaxCleaner().rewrite(script, diabetes_corpus[1:])
        before = scorer.score_dag(parse_script(script))
        after = scorer.score_dag(parse_script(cleaned))
        assert percent_improvement(before, after) == pytest.approx(0.0)

    def test_preserves_statement_sequence(self, alex_script):
        cleaned = SyntaxCleaner().rewrite(alex_script, [])
        assert lemmatize(cleaned) == lemmatize(alex_script)


class TestSimulatedLLM:
    def test_keeps_protected_lines(self, diabetes_corpus, alex_script):
        out = gpt4(seed=1).rewrite(alex_script, diabetes_corpus)
        assert "import pandas as pd" in out
        assert "read_csv" in out

    def test_output_is_parseable(self, diabetes_corpus, alex_script):
        for seed in range(8):
            out = gpt35(seed=seed).rewrite(alex_script, diabetes_corpus)
            parse_script(out)  # must not raise

    def test_seeded_determinism(self, diabetes_corpus, alex_script):
        assert gpt4(seed=3).rewrite(alex_script, diabetes_corpus) == gpt4(
            seed=3
        ).rewrite(alex_script, diabetes_corpus)

    def test_noop_path_returns_normalized_script(self, diabetes_corpus, alex_script):
        outputs = {
            gpt4(seed=s).rewrite(alex_script, diabetes_corpus) for s in range(30)
        }
        assert lemmatize(alex_script) in outputs

    def test_sometimes_copies_corpus_steps(self, diabetes_corpus, alex_script):
        corpus_step = "df = df[df['SkinThickness'] < 80]"
        hits = sum(
            corpus_step in gpt4(seed=s).rewrite(alex_script, diabetes_corpus)
            for s in range(40)
        )
        assert hits > 0

    def test_gpt4_changes_less_than_gpt35(self, diabetes_corpus, alex_script):
        base = lemmatize(alex_script)
        changed4 = sum(
            gpt4(seed=s).rewrite(alex_script, diabetes_corpus) != base
            for s in range(40)
        )
        changed35 = sum(
            gpt35(seed=s).rewrite(alex_script, diabetes_corpus) != base
            for s in range(40)
        )
        assert changed4 <= changed35

    def test_broken_input_returned_verbatim(self, diabetes_corpus):
        assert gpt4().rewrite("x ===", diabetes_corpus) == "x ==="

    def test_empty_corpus_tolerated(self, alex_script):
        out = gpt35(seed=0).rewrite(alex_script, [])
        parse_script(out)


def _relational_frame():
    return DataFrame(
        {
            "name": [f"p{i}" for i in range(40)],
            "city": ["x", "y"] * 20,
            "age": list(range(40)),
            "score": [v * 1.5 for v in range(40)],
        }
    )


def _year_matrix_frame():
    data = {"product": ["a", "b", "c"]}
    for year in range(1990, 2030):
        data[str(year)] = [year * 1.0, year * 2.0, year * 3.0]
    return DataFrame(data)


class TestTableFeatures:
    def test_relational_frame_looks_relational(self):
        features = featurize_table(_relational_frame())
        assert features.looks_relational
        assert not features.wide

    def test_year_matrix_flagged(self):
        features = featurize_table(_year_matrix_frame())
        assert features.yearlike_column_fraction > 0.9
        assert not features.looks_relational

    def test_duplicate_keys_detected(self):
        frame = DataFrame(
            {"shop": ["a", "a"], "item": ["x", "x"], "v": [1.0, 2.0]}
        )
        assert featurize_table(frame).has_duplicate_keys


class TestAutoSuggest:
    def test_no_suggestion_for_relational_table(self):
        assert predict_next_operator(featurize_table(_relational_frame())) is None

    def test_melt_for_year_matrix(self):
        assert predict_next_operator(featurize_table(_year_matrix_frame())) == "melt"

    def test_pivot_for_key_value_log(self):
        frame = DataFrame(
            {"shop": ["a", "a", "b"], "item": ["x", "x", "y"], "v": [1.0, 2.0, 3.0]}
        )
        assert predict_next_operator(featurize_table(frame)) == "pivot"

    def test_rewrite_unchanged_on_competition_data(self, diabetes_dir, alex_script):
        baseline = AutoSuggest(data_dir=diabetes_dir)
        assert baseline.rewrite(alex_script, []) == alex_script

    def test_rewrite_without_read_returns_input(self):
        assert AutoSuggest().rewrite("x = 1", []) == "x = 1"


class TestAutoTables:
    def test_relational_table_scores_high(self):
        assert relationality_score(_relational_frame()) == 4.0

    def test_empty_program_for_relational(self):
        assert synthesize_reshape_program(_relational_frame()) == []

    def test_reshapes_year_matrix(self):
        program = synthesize_reshape_program(_year_matrix_frame())
        assert program  # at least one structural step
        assert all(line.startswith("df = ") for line in program)

    def test_program_improves_score(self):
        frame = _year_matrix_frame()
        before = relationality_score(frame)
        program = synthesize_reshape_program(frame)
        # replay the program's table effects
        from repro.minipandas.ops import melt

        current = frame
        for line in program:
            current = current.T if line == "df = df.T" else melt(current)
        assert relationality_score(current) > before

    def test_rewrite_unchanged_on_competition_data(self, diabetes_dir, alex_script):
        baseline = AutoTables(data_dir=diabetes_dir)
        assert baseline.rewrite(alex_script, []) == alex_script


class TestBaselineInterface:
    def test_run_wraps_result(self, diabetes_corpus, alex_script):
        result = SyntaxCleaner().run(alex_script, diabetes_corpus)
        assert result.method == "Sourcery"
        assert result.input_script == alex_script
        assert isinstance(result.changed, bool)
