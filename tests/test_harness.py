"""Tests for the experiment harness (leave-one-out drivers, user study,
reporting)."""

import pytest

from repro.baselines import SyntaxCleaner, gpt4
from repro.core import LSConfig
from repro.harness import (
    ImprovementStats,
    evaluate_baseline,
    evaluate_lucidscript,
    make_intent,
    render_histogram,
    render_series,
    render_table,
    run_user_study,
    significance_against,
)
from repro.harness.user_study import RaterPanel


class TestImprovementStats:
    def test_summary_fields(self):
        stats = ImprovementStats.from_values([0.0, 10.0, 20.0, 50.0])
        assert stats.minimum == 0.0
        assert stats.maximum == 50.0
        assert stats.median == 15.0
        assert stats.mean == 20.0
        assert stats.n == 4

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ImprovementStats.from_values([])

    def test_row_rounding(self):
        row = ImprovementStats.from_values([33.333]).row()
        assert row["median"] == 33.3


class TestEvaluateLucidScript:
    def test_leave_one_out_run(self, medical_competition):
        run = evaluate_lucidscript(
            medical_competition,
            intent_kind="jaccard",
            config=LSConfig(seq=4, beam_size=1, sample_rows=120),
            max_scripts=3,
        )
        assert len(run.improvements) == 3
        assert all(v >= 0.0 for v in run.improvements)
        assert run.method == "LS (jaccard)"

    def test_model_intent_run(self, medical_competition):
        run = evaluate_lucidscript(
            medical_competition,
            intent_kind="model",
            tau=2.0,
            config=LSConfig(seq=3, beam_size=1, sample_rows=120),
            max_scripts=2,
        )
        assert len(run.improvements) == 2
        assert all(v >= 0.0 for v in run.improvements)

    def test_corpus_override(self, medical_competition, titanic_competition):
        run = evaluate_lucidscript(
            medical_competition,
            intent_kind="jaccard",
            config=LSConfig(seq=3, beam_size=1, sample_rows=120),
            max_scripts=2,
            corpus_override=titanic_competition.scripts,
        )
        assert len(run.improvements) == 2

    def test_retrieval_pool_run(self, medical_competition):
        # the retrieve-then-compute path: the leave-one-out remainder
        # becomes a RetrievalIndex pool, every query audited for
        # exactness against brute-force scoring
        run = evaluate_lucidscript(
            medical_competition,
            intent_kind="jaccard",
            config=LSConfig(
                seq=3, beam_size=1, sample_rows=120, verify_retrieval=True
            ),
            max_scripts=2,
            retrieval_k=3,
        )
        assert len(run.improvements) == 2
        assert all(v >= 0.0 for v in run.improvements)
        assert any(b.get("RetrievalQueries") for b in run.breakdowns)

    def test_breakdowns_recorded(self, medical_competition):
        run = evaluate_lucidscript(
            medical_competition,
            config=LSConfig(seq=3, beam_size=1, sample_rows=120),
            max_scripts=2,
        )
        breakdown = run.median_breakdown()
        assert "GetSteps" in breakdown
        assert all(v >= 0 for v in breakdown.values())

    def test_unknown_intent_kind(self, medical_competition):
        with pytest.raises(ValueError):
            make_intent("bogus", medical_competition)

    def test_make_intent_defaults(self, medical_competition):
        jaccard = make_intent("jaccard", medical_competition)
        assert jaccard.tau == 0.9
        model = make_intent("model", medical_competition)
        assert model.tau == 1.0
        assert model.target == "Outcome"


class TestEvaluateBaseline:
    def test_sourcery_is_all_zero(self, medical_competition):
        run = evaluate_baseline(SyntaxCleaner(), medical_competition, max_scripts=4)
        assert run.stats().minimum == 0.0
        assert run.stats().maximum == 0.0

    def test_gpt_has_variance(self, medical_competition):
        run = evaluate_baseline(gpt4(seed=0), medical_competition, max_scripts=10)
        assert run.stats().minimum <= run.stats().maximum
        assert len(run.output_scripts) == 10


class TestUserStudy:
    def test_panel_rates_in_range(self):
        panel = RaterPanel(seed=0)
        ratings = panel.rate(0.7)
        assert len(ratings) == 34
        assert all(1.0 <= r <= 5.0 for r in ratings)

    def test_panel_monotone_in_quality(self):
        low = sum(RaterPanel(seed=0).rate(0.1)) / 34
        high = sum(RaterPanel(seed=0).rate(0.9)) / 34
        assert high > low

    def test_panel_needs_two_raters(self):
        with pytest.raises(ValueError):
            RaterPanel(n_raters=1)

    def test_study_prefers_corpus_aligned_script(self, diabetes_corpus):
        outputs = {
            "LS": diabetes_corpus[0],
            "GPT-4": "import pandas as pd\ndf = pd.read_csv('diabetes.csv')\ndf = df.dropna()\ndf = df.reset_index(drop=True)",
        }
        outcomes = run_user_study(outputs, diabetes_corpus, seed=0)
        assert outcomes["LS"].mean_standard > outcomes["GPT-4"].mean_standard

    def test_significance_returns_pvalues(self, diabetes_corpus):
        outputs = {
            "LS": diabetes_corpus[0],
            "Sourcery": "import pandas as pd\ndf = pd.read_csv('diabetes.csv')\nx = 1\ny = 2\nz = 3",
        }
        outcomes = run_user_study(outputs, diabetes_corpus, seed=0)
        pvalues = significance_against(outcomes, ls_method="LS")
        assert set(pvalues) == {"Sourcery"}
        assert 0.0 <= pvalues["Sourcery"] <= 1.0

    def test_study_requires_ls(self, diabetes_corpus):
        with pytest.raises(KeyError):
            run_user_study({"GPT-4": "x = 1"}, diabetes_corpus)

    def test_intent_blend_changes_helpfulness(self, diabetes_corpus):
        outputs = {"LS": diabetes_corpus[0], "Other": diabetes_corpus[1]}
        cold = run_user_study(outputs, diabetes_corpus, seed=0)
        with_intent = run_user_study(
            outputs,
            diabetes_corpus,
            intent_preservation={"LS": 1.0, "Other": 0.0},
            seed=0,
        )
        assert (
            with_intent["Other"].mean_helpful < cold["Other"].mean_helpful + 1e-9
        )


class TestReporting:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [33, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_histogram_counts(self):
        out = render_histogram([1, 1, 2, 9], bins=[0, 5, 10], title="H")
        assert "3" in out and "1" in out

    def test_render_series(self):
        out = render_series([(2, 10.0), (4, 20.0)], "seq", "improvement")
        assert "seq" in out and "20.0" in out


class TestPrevalenceMatrix:
    def test_table1_style_matrix(self, diabetes_corpus, alex_script):
        from repro.harness import step_prevalence_matrix

        out = step_prevalence_matrix(diabetes_corpus, user_script=alex_script)
        lines = out.splitlines()
        assert "s_u" in lines[0] and "s_3" in lines[0]
        # the majority step is checked in all three corpus columns
        fillna_row = next(l for l in lines if "fillna(df.mean())" in l)
        assert fillna_row.count("x") == 3
        # the user's median imputation appears only in the s_u column
        median_row = next(l for l in lines if "fillna(df.median())" in l)
        assert median_row.count("x") == 1

    def test_matrix_without_user_script(self, diabetes_corpus):
        from repro.harness import step_prevalence_matrix

        out = step_prevalence_matrix(diabetes_corpus)
        assert "s_u" not in out.splitlines()[0]

    def test_max_steps_cap(self, diabetes_corpus):
        from repro.harness import step_prevalence_matrix

        out = step_prevalence_matrix(diabetes_corpus, max_steps=2)
        # header + separator + 2 step rows
        assert len(out.splitlines()) == 4
