"""Tests for the script → DAG parser (Section 3)."""

import pytest

from repro.lang import (
    NGRAM,
    ONEGRAM,
    Atom,
    Edge,
    ScriptParseError,
    Statement,
    parse_script,
)

SCRIPT = (
    "import pandas as pd\n"
    "df = pd.read_csv('diabetes.csv')\n"
    "df = df.fillna(df.mean())\n"
    "df = df[df['SkinThickness'] < 80]\n"
    "df = pd.get_dummies(df)"
)


@pytest.fixture()
def dag():
    return parse_script(SCRIPT)


class TestAtoms:
    def test_atom_requires_valid_gram(self):
        with pytest.raises(ValueError):
            Atom("2-gram", "x")

    def test_atom_requires_signature(self):
        with pytest.raises(ValueError):
            Atom(ONEGRAM, "")

    def test_atom_str(self):
        assert str(Atom(NGRAM, "df = df.dropna()")) == "df = df.dropna()"

    def test_edge_tuple(self):
        assert Edge("a", "b").as_tuple() == ("a", "b")
        assert str(Edge("a", "b")) == "a -> b"


class TestStatements:
    def test_statement_count(self, dag):
        assert len(dag) == 5

    def test_ngram_is_source_text(self, dag):
        assert dag.statements[2].ngram.signature == "df = df.fillna(df.mean())"

    def test_import_is_protected(self, dag):
        assert dag.statements[0].protected
        assert dag.statements[0].is_import

    def test_read_csv_is_protected(self, dag):
        assert dag.statements[1].protected
        assert dag.statements[1].is_read_csv

    def test_body_statements_unprotected(self, dag):
        assert not dag.statements[2].protected
        assert not dag.statements[3].protected

    def test_reads_writes(self, dag):
        fillna = dag.statements[2]
        assert "df" in fillna.reads
        assert "df" in fillna.writes

    def test_import_writes_alias(self, dag):
        assert "pd" in dag.statements[0].writes

    def test_from_source_single_statement(self):
        stmt = Statement.from_source(0, "df = df.dropna()")
        assert stmt.source == "df = df.dropna()"
        assert stmt.index == 0

    def test_from_source_rejects_multiple(self):
        with pytest.raises(ScriptParseError):
            Statement.from_source(0, "x = 1\ny = 2")

    def test_from_source_rejects_invalid(self):
        with pytest.raises(ScriptParseError):
            Statement.from_source(0, "x ===")

    def test_subscript_store_counts_as_write(self):
        stmt = Statement.from_source(0, "df['a'] = 1")
        assert "df" in stmt.writes


class TestOnegrams:
    def test_fillna_atoms(self, dag):
        sigs = {a.signature for a in dag.statements[2].onegrams}
        assert "fillna(df,@)" in sigs
        assert "mean(df)" in sigs

    def test_filter_atoms(self, dag):
        sigs = {a.signature for a in dag.statements[3].onegrams}
        assert "subscript(df,'SkinThickness')" in sigs
        assert "<(@,80)" in sigs
        assert "subscript(df,@)" in sigs

    def test_intra_edges_follow_nesting(self, dag):
        edges = {e.as_tuple() for e in dag.statements[3].intra_edges}
        assert ("subscript(df,'SkinThickness')", "<(@,80)") in edges
        assert ("<(@,80)", "subscript(df,@)") in edges

    def test_call_receiver_is_first_arg(self, dag):
        sigs = {a.signature for a in dag.statements[4].onegrams}
        assert "get_dummies(pd,df)" in sigs

    def test_onegram_counter(self, dag):
        counter = dag.onegram_counter()
        assert counter["mean(df)"] == 1
        assert sum(counter.values()) == len(
            [a for s in dag.statements for a in s.onegrams]
        )


class TestInterEdges:
    def test_dataflow_chain(self, dag):
        edges = {e.as_tuple() for e in dag.inter_edges()}
        assert (
            "df = pd.read_csv('diabetes.csv')",
            "df = df.fillna(df.mean())",
        ) in edges
        assert (
            "df = df.fillna(df.mean())",
            "df = df[df['SkinThickness'] < 80]",
        ) in edges

    def test_import_feeds_read(self, dag):
        edges = {e.as_tuple() for e in dag.inter_edges()}
        assert ("import pandas as pd", "df = pd.read_csv('diabetes.csv')") in edges

    def test_no_self_edges(self, dag):
        for e in dag.edges():
            if e.source == e.target:
                # only allowed for distinct statements with identical text
                count = sum(
                    1 for s in dag.statements if s.ngram.signature == e.source
                )
                assert count > 1

    def test_edge_counter_totals(self, dag):
        counter = dag.edge_counter()
        assert sum(counter.values()) == len(dag.edges())

    def test_lemmatization_applied_by_default(self):
        dag = parse_script(
            "import pandas as pd\ntrain = pd.read_csv('d.csv')\ntrain = train.dropna()"
        )
        assert dag.statements[1].source == "df = pd.read_csv('d.csv')"

    def test_lemmatized_flag_skips_renaming(self):
        dag = parse_script("x = 1\ny = x + 1", lemmatized=True)
        assert len(dag) == 2


class TestExports:
    def test_source_roundtrip(self, dag):
        assert parse_script(dag.source(), lemmatized=True).source() == dag.source()

    def test_to_dot_contains_nodes_and_edges(self, dag):
        dot = dag.to_dot()
        assert dot.startswith("digraph")
        assert "s0" in dot and "->" in dot

    def test_to_networkx(self, dag):
        graph = dag.to_networkx()
        assert graph.number_of_nodes() == 5
        assert graph.has_edge(1, 2)

    def test_networkx_is_acyclic(self, dag):
        import networkx as nx

        assert nx.is_directed_acyclic_graph(dag.to_networkx())
