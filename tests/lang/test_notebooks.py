"""Tests for notebook-to-script extraction."""

import json

import pytest

from repro.lang import (
    lemmatize,
    script_from_notebook,
    scripts_from_notebook_dir,
)


def make_notebook(*cell_sources, cell_type="code"):
    return {
        "cells": [
            {"cell_type": cell_type, "source": source.splitlines(keepends=True)}
            for source in cell_sources
        ],
        "nbformat": 4,
    }


class TestScriptFromNotebook:
    def test_concatenates_code_cells(self):
        nb = make_notebook(
            "import pandas as pd\ndf = pd.read_csv('t.csv')",
            "df = df.dropna()",
        )
        script = script_from_notebook(nb)
        assert script.splitlines() == [
            "import pandas as pd",
            "df = pd.read_csv('t.csv')",
            "df = df.dropna()",
        ]

    def test_markdown_cells_skipped(self):
        nb = make_notebook("x = 1")
        nb["cells"].insert(
            0, {"cell_type": "markdown", "source": ["# My analysis\n"]}
        )
        assert script_from_notebook(nb) == "x = 1"

    def test_magics_dropped(self):
        nb = make_notebook("%matplotlib inline\n!pip install pandas\nx = 1")
        assert script_from_notebook(nb) == "x = 1"

    def test_display_tail_dropped(self):
        nb = make_notebook("df = 1\ndf")
        assert script_from_notebook(nb) == "df = 1"

    def test_head_call_dropped(self):
        nb = make_notebook("import pandas as pd\ndf = pd.read_csv('t.csv')\ndf.head()")
        assert "head" not in script_from_notebook(nb)

    def test_used_head_call_kept(self):
        nb = make_notebook("import pandas as pd\ndf = pd.read_csv('t.csv')\ntop = df.head(5)")
        assert "top = df.head(5)" in script_from_notebook(nb)

    def test_string_source_cells(self):
        nb = {"cells": [{"cell_type": "code", "source": "x = 1\ny = 2"}]}
        assert script_from_notebook(nb) == "x = 1\ny = 2"

    def test_broken_cells_skipped(self):
        nb = make_notebook("x = 1", "this is not python (", "y = 2")
        assert script_from_notebook(nb) == "x = 1\ny = 2"

    def test_no_code_cells_raises(self):
        nb = {"cells": [{"cell_type": "markdown", "source": ["hi"]}]}
        with pytest.raises(ValueError):
            script_from_notebook(nb)

    def test_from_path(self, tmp_path):
        path = tmp_path / "nb.ipynb"
        path.write_text(json.dumps(make_notebook("x = 1")))
        assert script_from_notebook(str(path)) == "x = 1"

    def test_output_is_lemmatizable(self):
        nb = make_notebook(
            "import pandas as pd",
            "%time\ntrain = pd.read_csv('t.csv')\ntrain.head()",
            "train = train.dropna()",
        )
        normalized = lemmatize(script_from_notebook(nb))
        assert "df = df.dropna()" in normalized


class TestDirectoryHelper:
    def test_reads_many_and_skips_bad(self, tmp_path):
        good = tmp_path / "a.ipynb"
        good.write_text(json.dumps(make_notebook("x = 1")))
        broken = tmp_path / "b.ipynb"
        broken.write_text("{not json")
        codeless = tmp_path / "c.ipynb"
        codeless.write_text(json.dumps({"cells": []}))
        scripts = scripts_from_notebook_dir(
            [str(good), str(broken), str(codeless), str(tmp_path / "missing.ipynb")]
        )
        assert scripts == ["x = 1"]
