"""Differential tests: EdgeState deltas vs the full positional recount.

The O(Δ) engine's contract is *exactness*: after any insert/delete the
patched edge multiset must equal :func:`compute_edge_counts` of the
spliced sequence, edge for edge, count for count.  These tests drive the
state through directed edge cases and randomized splice sequences and
compare against the from-scratch walk at every step.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import EdgeState, parse_script
from repro.lang.parser import Statement, compute_edge_counts

STEP_POOL = [
    "df = df.fillna(df.mean())",
    "df = df.fillna(df.median())",
    "df = df.dropna()",
    "df = df[df['x'] < 80]",
    "df = pd.get_dummies(df)",
    "df['y'] = df['x'] * 2",
    "df = df.drop('z', axis=1)",
    "df = df.sort_values('x')",
    "s = df['x'].sum()",
    "df2 = df.copy()",
    "df = df2.rename(columns={'a': 'b'})",
    "print(s)",
]


def build_script(body):
    return "\n".join(["import pandas as pd", "df = pd.read_csv('t.csv')"] + body)


def statements_for(body):
    return tuple(parse_script(build_script(body)).statements)


def new_statement(source):
    return Statement.from_source(0, source)


def assert_delta_exact(state, delta):
    """Applying *delta* must reproduce the full recount of the new sequence."""
    new_state = state.apply(delta)
    expected = compute_edge_counts(new_state.statements)
    assert new_state.counts == expected
    return new_state


# ------------------------------------------------------------ construction
def test_from_statements_matches_compute_edge_counts():
    statements = statements_for(STEP_POOL[:6])
    state = EdgeState.from_statements(statements)
    assert state.counts == compute_edge_counts(statements)
    assert len(state) == len(statements)


# ---------------------------------------------------------- directed cases
def test_insert_at_position_zero():
    state = EdgeState.from_statements(statements_for(["df = df.dropna()"]))
    delta = state.delta_insert(0, new_statement("x = 1"))
    assert_delta_exact(state, delta)


def test_insert_at_tail():
    state = EdgeState.from_statements(statements_for(["df = df.dropna()"]))
    delta = state.delta_insert(len(state), new_statement("df = df.sort_values('x')"))
    assert_delta_exact(state, delta)


def test_delete_rebinds_downstream_readers_to_previous_writer():
    """Deleting a writer moves its readers' edges to the prior writer."""
    state = EdgeState.from_statements(
        statements_for(["df = df.dropna()", "df = df.sort_values('x')", "print(df)"])
    )
    # delete the sort: print(df) and nothing else rebinds to dropna
    delta = state.delta_delete(3)
    assert_delta_exact(state, delta)


def test_insert_rebinds_reader_that_also_writes():
    """A statement that reads and writes a variable binds its read *before*
    its own write, so it rebinds when a writer is spliced right above it."""
    state = EdgeState.from_statements(
        statements_for(["df = df.dropna()", "df = df.fillna(df.mean())"])
    )
    delta = state.delta_insert(3, new_statement("df = df.sort_values('x')"))
    assert_delta_exact(state, delta)


def test_delete_to_empty():
    state = EdgeState.from_statements(statements_for([])[:1])
    state = assert_delta_exact(state, state.delta_delete(0))
    assert len(state) == 0
    assert not state.counts


def test_out_of_range_positions_raise_index_error():
    state = EdgeState.from_statements(statements_for(["df = df.dropna()"]))
    with pytest.raises(IndexError):
        state.delta_delete(len(state))
    with pytest.raises(IndexError):
        state.delta_delete(-1)
    with pytest.raises(IndexError):
        state.delta_insert(len(state) + 1, new_statement("x = 1"))
    with pytest.raises(IndexError):
        state.delta_insert(-1, new_statement("x = 1"))


def test_delta_changes_have_no_zero_entries():
    state = EdgeState.from_statements(statements_for(STEP_POOL[:5]))
    for position in range(len(state)):
        assert all(state.delta_delete(position).changes.values())
    stmt = new_statement("df = df.dropna()")
    for position in range(len(state) + 1):
        assert all(state.delta_insert(position, stmt).changes.values())


# --------------------------------------------------------------- randomized
@pytest.mark.parametrize("seed", range(6))
def test_randomized_splice_sequences_stay_exact(seed):
    """Long random walks of inserts/deletes never drift from the recount."""
    rng = random.Random(seed)
    state = EdgeState.from_statements(
        statements_for(rng.sample(STEP_POOL, rng.randint(0, 6)))
    )
    for _ in range(120):
        n = len(state)
        if n and (n >= 14 or rng.random() < 0.5):
            delta = state.delta_delete(rng.randrange(n))
        else:
            delta = state.delta_insert(
                rng.randrange(n + 1), new_statement(rng.choice(STEP_POOL))
            )
        state = assert_delta_exact(state, delta)


@given(
    st.lists(st.sampled_from(STEP_POOL), min_size=0, max_size=6),
    st.sampled_from(STEP_POOL),
    st.integers(0, 8),
)
@settings(max_examples=60)
def test_single_splice_matches_recount(body, step, position):
    statements = statements_for(body)
    state = EdgeState.from_statements(statements)
    insert_at = min(position, len(statements))
    assert_delta_exact(state, state.delta_insert(insert_at, new_statement(step)))
    if statements:
        delete_at = min(position, len(statements) - 1)
        assert_delta_exact(state, state.delta_delete(delete_at))
