"""Tests for script lemmatization (Section 5.1)."""

import pytest

from repro.lang import (
    ScriptParseError,
    UnsupportedScriptError,
    lemmatize,
    read_csv_files,
    split_statements,
)


class TestCanonicalRenaming:
    def test_read_csv_target_renamed_to_df(self):
        out = lemmatize("import pandas as pd\ntrain = pd.read_csv('d.csv')\ntrain = train.dropna()")
        assert "df = pd.read_csv('d.csv')" in out
        assert "df = df.dropna()" in out
        assert "train" not in out

    def test_df_stays_df(self):
        out = lemmatize("import pandas as pd\ndf = pd.read_csv('d.csv')")
        assert "df = pd.read_csv('d.csv')" in out

    def test_two_files_get_distinct_names(self):
        out = lemmatize(
            "import pandas as pd\n"
            "a = pd.read_csv('one.csv')\n"
            "b = pd.read_csv('two.csv')\n"
            "a = a.dropna()\n"
            "b = b.dropna()"
        )
        assert "df = pd.read_csv('one.csv')" in out
        assert "df2 = pd.read_csv('two.csv')" in out

    def test_same_file_twice_shares_name(self):
        out = lemmatize(
            "import pandas as pd\n"
            "a = pd.read_csv('one.csv')\n"
            "b = pd.read_csv('one.csv')"
        )
        assert out.count("df = pd.read_csv('one.csv')") == 2

    def test_plain_alias_propagates(self):
        out = lemmatize(
            "import pandas as pd\n"
            "train = pd.read_csv('d.csv')\n"
            "data = train\n"
            "data = data.dropna()"
        )
        assert "df = df.dropna()" in out

    def test_derived_variables_keep_their_names(self):
        out = lemmatize(
            "import pandas as pd\n"
            "df = pd.read_csv('d.csv')\n"
            "y = df['target']\n"
            "X = df.drop('target', axis=1)"
        )
        assert "y = df['target']" in out
        assert "X = df.drop('target', axis=1)" in out

    def test_consistent_across_scripts(self):
        a = lemmatize("import pandas as pd\ntrain = pd.read_csv('d.csv')\ntrain = train.dropna()")
        b = lemmatize("import pandas as pd\nfoo = pd.read_csv('d.csv')\nfoo = foo.dropna()")
        assert a == b


class TestNormalization:
    def test_quote_style_normalized(self):
        a = lemmatize('import pandas as pd\ndf = pd.read_csv("d.csv")')
        b = lemmatize("import pandas as pd\ndf = pd.read_csv('d.csv')")
        assert a == b

    def test_whitespace_normalized(self):
        a = lemmatize("x   =   1 +   2")
        assert a == "x = 1 + 2"

    def test_comments_removed(self):
        out = lemmatize("x = 1  # the answer\n# a full-line comment\ny = 2")
        assert "#" not in out
        assert out == "x = 1\ny = 2"

    def test_blank_lines_removed(self):
        out = lemmatize("x = 1\n\n\ny = 2")
        assert out == "x = 1\ny = 2"

    def test_redundant_parens_removed(self):
        assert lemmatize("x = (1)") == "x = 1"

    def test_idempotent(self):
        script = "import pandas as pd\ntrain = pd.read_csv('d.csv')\ntrain = train.dropna()"
        once = lemmatize(script)
        assert lemmatize(once) == once


class TestErrors:
    def test_syntax_error(self):
        with pytest.raises(ScriptParseError):
            lemmatize("def broken(:")

    def test_function_def_unsupported(self):
        with pytest.raises(UnsupportedScriptError):
            lemmatize("def f():\n    pass")

    def test_class_unsupported(self):
        with pytest.raises(UnsupportedScriptError):
            lemmatize("class C:\n    pass")

    def test_while_unsupported(self):
        with pytest.raises(UnsupportedScriptError):
            lemmatize("while True:\n    pass")

    def test_try_unsupported(self):
        with pytest.raises(UnsupportedScriptError):
            lemmatize("try:\n    pass\nexcept Exception:\n    pass")

    def test_straight_line_if_allowed(self):
        # simple conditionals are tolerated (they parse and unparse cleanly)
        out = lemmatize("x = 1\nif x:\n    y = 2")
        assert "if x:" in out


class TestHelpers:
    def test_read_csv_files_lists_paths(self):
        script = (
            "import pandas as pd\n"
            "a = pd.read_csv('one.csv')\n"
            "b = pd.read_csv('two.csv')\n"
            "c = pd.read_csv('one.csv')"
        )
        assert read_csv_files(script) == ["one.csv", "two.csv"]

    def test_read_csv_dynamic_path(self):
        assert read_csv_files("import pandas as pd\nx = pd.read_csv(p)") == ["<dynamic>"]

    def test_split_statements(self):
        out = split_statements("x = 1; y = 2\nz = 3")
        assert out == ["x = 1", "y = 2", "z = 3"]
