"""Tests for curated-search-space persistence."""

import json

import pytest

from repro.core.entropy import RelativeEntropyScorer
from repro.lang import (
    CorpusVocabulary,
    load_vocabulary,
    parse_script,
    save_vocabulary,
    vocabulary_from_dict,
    vocabulary_to_dict,
)


@pytest.fixture()
def vocab(diabetes_corpus):
    return CorpusVocabulary.from_scripts(diabetes_corpus)


class TestRoundtrip:
    def test_edge_counts_preserved(self, vocab, tmp_path):
        path = str(tmp_path / "v.json")
        save_vocabulary(vocab, path)
        restored = load_vocabulary(path)
        assert restored.edge_counts == vocab.edge_counts
        assert restored.total_edges == vocab.total_edges

    def test_atom_counts_preserved(self, vocab, tmp_path):
        path = str(tmp_path / "v.json")
        save_vocabulary(vocab, path)
        restored = load_vocabulary(path)
        assert restored.onegram_counts == vocab.onegram_counts
        assert restored.ngram_counts == vocab.ngram_counts

    def test_stats_preserved(self, vocab, tmp_path):
        path = str(tmp_path / "v.json")
        save_vocabulary(vocab, path)
        restored = load_vocabulary(path)
        assert restored.stats() == vocab.stats()
        assert restored.n_scripts == vocab.n_scripts

    def test_successors_preserved(self, vocab, tmp_path):
        path = str(tmp_path / "v.json")
        save_vocabulary(vocab, path)
        restored = load_vocabulary(path)
        key = "df = df.fillna(df.mean())"
        assert restored.ngram_successors(key) == vocab.ngram_successors(key)

    def test_statement_frequency_preserved(self, vocab, tmp_path):
        path = str(tmp_path / "v.json")
        save_vocabulary(vocab, path)
        restored = load_vocabulary(path)
        sig = "df = df[df['SkinThickness'] < 80]"
        assert restored.statement_frequency(sig) == vocab.statement_frequency(sig)
        assert restored.statement_frequency("df = df.bogus()") == 0.0

    def test_templates_and_positions_preserved(self, vocab, tmp_path):
        path = str(tmp_path / "v.json")
        save_vocabulary(vocab, path)
        restored = load_vocabulary(path)
        assert restored.onegram_templates == vocab.onegram_templates
        assert restored.relative_positions == vocab.relative_positions

    def test_scoring_identical_after_restore(self, vocab, tmp_path, alex_script):
        path = str(tmp_path / "v.json")
        save_vocabulary(vocab, path)
        restored = load_vocabulary(path)
        dag = parse_script(alex_script)
        assert RelativeEntropyScorer(restored).score_dag(dag) == pytest.approx(
            RelativeEntropyScorer(vocab).score_dag(dag)
        )

    def test_file_is_json(self, vocab, tmp_path):
        path = str(tmp_path / "v.json")
        save_vocabulary(vocab, path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["format_version"] == 1

    def test_dict_roundtrip_without_disk(self, vocab):
        restored = vocabulary_from_dict(vocabulary_to_dict(vocab))
        assert restored.edge_counts == vocab.edge_counts

    def test_wrong_version_rejected(self, vocab):
        payload = vocabulary_to_dict(vocab)
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            vocabulary_from_dict(payload)

    def test_newer_version_names_the_remedy(self, vocab):
        # a snapshot from a future release is distinguished from junk:
        # the error says the file is newer and how to proceed
        payload = vocabulary_to_dict(vocab)
        payload["format_version"] = 2
        with pytest.raises(ValueError, match="newer than the supported"):
            vocabulary_from_dict(payload)
        with pytest.raises(ValueError, match="rebuild the snapshot"):
            vocabulary_from_dict(payload)

    def test_non_integer_version_rejected(self, vocab):
        payload = vocabulary_to_dict(vocab)
        payload["format_version"] = "v1"
        with pytest.raises(ValueError, match="unsupported"):
            vocabulary_from_dict(payload)

    def test_epsilon_preserved(self, vocab, tmp_path):
        path = str(tmp_path / "v.json")
        save_vocabulary(vocab, path)
        assert load_vocabulary(path).epsilon == vocab.epsilon
