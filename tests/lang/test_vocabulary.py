"""Tests for offline search-space curation (CorpusVocabulary)."""

import pytest

from repro.lang import NGRAM, ONEGRAM, CorpusVocabulary, ScriptError


@pytest.fixture()
def vocab(diabetes_corpus):
    return CorpusVocabulary.from_scripts(diabetes_corpus)


class TestConstruction:
    def test_counts_scripts(self, vocab):
        assert vocab.n_scripts == 3

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            CorpusVocabulary([])

    def test_all_broken_corpus_raises(self):
        with pytest.raises(ScriptError):
            CorpusVocabulary.from_scripts(["def broken(:", "while True: pass"])

    def test_broken_scripts_skipped(self, diabetes_corpus):
        vocab = CorpusVocabulary.from_scripts(diabetes_corpus + ["not valid ("])
        assert vocab.n_scripts == 3

    def test_lemmatization_unifies_variables(self, vocab):
        # corpus uses df and train; after lemmatization the fillna statement
        # should appear once per script
        assert vocab.ngram_counts["df = df.fillna(df.mean())"] == 3


class TestCounts:
    def test_edge_counts_positive(self, vocab):
        assert vocab.total_edges > 0
        assert all(count > 0 for count in vocab.edge_counts.values())

    def test_majority_edge_counted_thrice(self, vocab):
        edge = (
            "df = pd.read_csv('diabetes.csv')",
            "df = df.fillna(df.mean())",
        )
        assert vocab.edge_counts[edge] == 3

    def test_minority_edge_counted_once(self, vocab):
        edge = (
            "df = df.fillna(df.mean())",
            "df = pd.get_dummies(df)",
        )
        assert vocab.edge_counts[edge] == 1

    def test_stats_fields(self, vocab):
        stats = vocab.stats()
        assert stats.n_scripts == 3
        assert stats.uniq_edges == vocab.uniq_edges
        assert stats.avg_code_lines == pytest.approx(14 / 3)
        d = stats.as_dict()
        assert d["Scripts"] == 3


class TestDistribution:
    def test_q_distribution_sums_to_one(self, vocab):
        assert sum(vocab.q_distribution().values()) == pytest.approx(1.0)

    def test_q_probability_known_edge(self, vocab):
        edge = (
            "df = pd.read_csv('diabetes.csv')",
            "df = df.fillna(df.mean())",
        )
        assert vocab.q_probability(edge) == pytest.approx(3 / vocab.total_edges)

    def test_q_probability_unknown_edge_is_epsilon(self, vocab):
        assert vocab.q_probability(("nope", "nada")) == vocab.epsilon

    def test_epsilon_is_half_count(self, vocab):
        assert vocab.epsilon == pytest.approx(0.5 / vocab.total_edges)


class TestStepLookup:
    def test_statement_frequency(self, vocab):
        assert vocab.statement_frequency("df = df.fillna(df.mean())") == 1.0
        assert vocab.statement_frequency("df = df[df['SkinThickness'] < 80]") == pytest.approx(2 / 3)
        assert vocab.statement_frequency("df = df.bogus()") == 0.0

    def test_ngram_successors_ranked(self, vocab):
        successors = vocab.ngram_successors("df = df.fillna(df.mean())")
        assert successors[0][0] == "df = df[df['SkinThickness'] < 80]"
        assert successors[0][1] == 2

    def test_ngram_successors_unknown_is_empty(self, vocab):
        assert vocab.ngram_successors("df = df.bogus()") == []

    def test_render_ngram(self, vocab):
        sig = "df = df.fillna(df.mean())"
        assert vocab.render_statement(NGRAM, sig) == sig

    def test_render_unknown_ngram_is_none(self, vocab):
        assert vocab.render_statement(NGRAM, "df = df.bogus()") is None

    def test_render_onegram_uses_template(self, vocab):
        template = vocab.render_statement(ONEGRAM, "fillna(df,@)")
        assert template == "df = df.fillna(df.mean())"

    def test_render_invalid_gram_raises(self, vocab):
        with pytest.raises(ValueError):
            vocab.render_statement("2-gram", "x")

    def test_relative_positions_in_unit_interval(self, vocab):
        for value in vocab.relative_positions.values():
            assert 0.0 <= value <= 1.0

    def test_read_csv_position_before_get_dummies(self, vocab):
        read = vocab.relative_positions["df = pd.read_csv('diabetes.csv')"]
        encode = vocab.relative_positions["df = pd.get_dummies(df)"]
        assert read < encode
