"""The pluggable ApiDialect subsystem.

Covers the subsystem's hard guarantees:

- registry surface (unknown names fail listing the registered options,
  both directly and through ``LSConfig``);
- per-dialect sandbox module tables (satellite: out-of-surface imports
  raise a classified :class:`SandboxImportError` naming the module);
- dialect threading through the corpus layer — mixed-dialect admission
  is rejected, snapshots round-trip the dialect, and pre-dialect
  (legacy) snapshots load as pandas with a one-line upgrade note;
- cross-dialect property test: randomized interleaved
  add/remove/refresh on a tablereport corpus index stays bit-identical
  to a from-scratch vocabulary build;
- the ``verify_dialect`` audit — pandas must replay its pre-refactor
  fixture byte-for-byte — and a tablereport end-to-end smoke under a
  hard wall-clock cap.
"""

import copy
import json
import os
import random
import signal
import tempfile

import pytest

from repro.core import LSConfig, LucidScript, StandardizationError
from repro.corpus import (
    CorpusIndex,
    RetrievalIndex,
    ScriptStore,
    clear_corpus_cache,
    corpus_key,
    index_from_dict,
    index_to_dict,
)
from repro.dialects import (
    UnknownDialectError,
    dialect_names,
    get_dialect,
    resolve_dialect,
)
from repro.dialects.cases import fixture_case
from repro.dialects.tablereport_corpus import fixture_scripts, generate_corpus
from repro.dialects.verify import verify_dialect
from repro.sandbox import SandboxImportError, run_script


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_corpus_cache()
    yield
    clear_corpus_cache()


@pytest.fixture()
def tablereport_dir(tmp_path):
    """A data directory holding the deterministic tablereport design."""
    case = fixture_case("tablereport")
    for filename, text in case.data_files.items():
        (tmp_path / filename).write_text(text)
    return str(tmp_path)


class TestRegistry:
    def test_both_dialects_registered(self):
        assert {"pandas", "tablereport"} <= set(dialect_names())

    def test_unknown_name_lists_registered(self):
        with pytest.raises(UnknownDialectError) as excinfo:
            get_dialect("polars")
        message = str(excinfo.value)
        assert "'polars'" in message
        assert "pandas" in message and "tablereport" in message

    def test_config_validates_dialect(self):
        with pytest.raises(UnknownDialectError) as excinfo:
            LSConfig(dialect="nope")
        assert "registered dialects" in str(excinfo.value)

    def test_resolve_accepts_none_name_and_instance(self):
        pandas = resolve_dialect(None)
        assert pandas.name == "pandas"
        assert resolve_dialect("tablereport").name == "tablereport"
        assert resolve_dialect(pandas) is pandas


class TestSandboxSurface:
    def test_tablereport_scripts_execute(self, tablereport_dir):
        corpus, _ = fixture_scripts()
        result = run_script(
            corpus[0], data_dir=tablereport_dir, dialect="tablereport"
        )
        assert result.ok, result.error
        # the output convention resolves the report variable to a table
        assert result.output is not None
        assert "slack" in result.output.columns

    def test_out_of_surface_import_is_classified(self, tablereport_dir):
        # numpy is on the pandas surface but NOT on tablereport's
        script = (
            "import numpy as np\n"
            "import tablereport\n"
            "design = tablereport.load_design('design.csv')\n"
            "report = design.timing_report()"
        )
        result = run_script(script, data_dir=tablereport_dir, dialect="tablereport")
        assert not result.ok
        assert result.error_type == "SandboxImportError"
        assert isinstance(result.error, SandboxImportError)
        assert result.error.module == "numpy"
        assert "'numpy'" in str(result.error)
        assert "tablereport" in str(result.error)

    def test_pandas_surface_unchanged(self, tablereport_dir):
        script = "import numpy as np\nx = np.mean([1, 2, 3])"
        assert run_script(script, dialect="pandas").ok

    def test_pandas_module_rejected_in_tablereport(self, tablereport_dir):
        script = "import pandas as pd\ndf = pd.read_csv('design.csv')"
        result = run_script(script, data_dir=tablereport_dir, dialect="tablereport")
        assert not result.ok
        assert isinstance(result.error, SandboxImportError)
        assert result.error.module == "pandas"


class TestCorpusDialects:
    def test_records_carry_dialect(self):
        corpus, _ = fixture_scripts()
        store = ScriptStore(dialect="tablereport")
        record = store.get_or_parse(corpus[0])
        assert record is not None
        assert record.dialect == "tablereport"

    def test_mixed_dialect_admission_rejected(self):
        corpus, _ = fixture_scripts()
        record = ScriptStore(dialect="tablereport").get_or_parse(corpus[0])
        index = CorpusIndex()  # pandas by default
        with pytest.raises(ValueError, match="never mix dialects"):
            index.add_record(record)

    def test_corpus_key_is_dialect_scoped(self):
        corpus, _ = fixture_scripts()
        assert corpus_key(corpus, "tablereport") != corpus_key(corpus, "pandas")

    def test_system_rejects_foreign_dialect_index(self, tablereport_dir):
        corpus, _ = fixture_scripts()
        index = CorpusIndex.from_scripts(corpus, dialect="tablereport")
        with pytest.raises(StandardizationError, match="dialect"):
            LucidScript(index, data_dir=tablereport_dir)  # pandas config

    def test_snapshot_roundtrips_dialect(self):
        corpus, _ = fixture_scripts()
        index = CorpusIndex.from_scripts(corpus, dialect="tablereport")
        payload = json.loads(json.dumps(index_to_dict(index)))
        assert payload["dialect"] == "tablereport"
        restored = index_from_dict(payload)
        assert restored.dialect == "tablereport"
        assert all(r.dialect == "tablereport" for r in restored._records.values())
        restored.verify()

    def test_legacy_snapshot_loads_as_pandas(self, capsys):
        scripts = [
            "import pandas as pd\n"
            "df = pd.read_csv('train.csv')\n"
            "df = df.dropna()",
            "import pandas as pd\n"
            "df = pd.read_csv('train.csv')\n"
            "df = df.drop_duplicates()",
        ]
        index = CorpusIndex.from_scripts(scripts)
        payload = json.loads(json.dumps(index_to_dict(index)))
        del payload["dialect"]  # simulate a pre-dialect snapshot
        restored = index_from_dict(payload)
        note = capsys.readouterr().err
        assert restored.dialect == "pandas"
        assert "predates dialect tagging" in note
        assert note.count("\n") == 1  # exactly one line
        # and the upgraded snapshot round-trips cleanly, note-free
        upgraded = json.loads(json.dumps(index_to_dict(restored)))
        assert upgraded["dialect"] == "pandas"
        again = index_from_dict(upgraded)
        assert capsys.readouterr().err == ""
        assert again.content_hashes() == index.content_hashes()

    def test_retrieval_stats_report_dialect(self):
        corpus, _ = fixture_scripts()
        pool = RetrievalIndex.from_scripts(corpus, dialect="tablereport")
        assert pool.stats()["dialect"] == "tablereport"


class TestCrossDialectProperties:
    def test_interleaved_mutations_stay_bit_identical(self, tmp_path):
        """Randomized add/remove/refresh on a tablereport index ==
        from-scratch rebuild, after every mutation batch."""
        corpus_dir = tmp_path / "corpus"
        corpus_dir.mkdir()
        scripts = generate_corpus(seed=77, n=12)
        rng = random.Random(41)
        live = {}
        for i, script in enumerate(scripts[:6]):
            (corpus_dir / f"prep_{i:02d}.py").write_text(script)
            live[i] = script
        index = CorpusIndex(dialect="tablereport")
        index.refresh(str(corpus_dir))
        index.verify()  # from-scratch comparison, dialect-aware

        next_id = 6
        spare = list(scripts[6:])
        for _ in range(10):
            action = rng.choice(["add", "remove", "rewrite"])
            if action == "add" and spare:
                (corpus_dir / f"prep_{next_id:02d}.py").write_text(spare.pop())
                next_id += 1
            elif action == "remove" and len(live) > 2:
                victim = rng.choice(sorted(live))
                (corpus_dir / f"prep_{victim:02d}.py").unlink()
                del live[victim]
            elif action == "rewrite" and live:
                victim = rng.choice(sorted(live))
                path = corpus_dir / f"prep_{victim:02d}.py"
                path.write_text(path.read_text() + "\n# touched")
            index.refresh(str(corpus_dir))
            index.verify()

    def test_pandas_parity_via_verify_dialect(self):
        """The recorded pre-refactor pandas fixture replays byte-for-byte."""
        records = verify_dialect(["pandas"])
        assert records["pandas"]["dialect"] == "pandas"


class TestEndToEndSmoke:
    def test_tablereport_standardizes_under_timeout(self, tablereport_dir):
        """Full tablereport standardization, capped hard at 120s wall."""
        from repro.core.intent import TableJaccardIntent

        def _expired(signum, frame):  # pragma: no cover - only on hang
            raise TimeoutError("tablereport smoke exceeded its 120s cap")

        case = fixture_case("tablereport")
        previous = signal.signal(signal.SIGALRM, _expired)
        signal.alarm(120)
        try:
            system = LucidScript(
                case.corpus,
                data_dir=tablereport_dir,
                intent=TableJaccardIntent(tau=case.tau, mode=case.mode),
                config=LSConfig(
                    seq=case.seq,
                    beam_size=case.beam_size,
                    sample_rows=case.sample_rows,
                    dialect="tablereport",
                ),
            )
            result = system.standardize(case.input_script)
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)
        assert result.re_after < result.re_before
        assert result.intent_satisfied
        assert "prune_slack(-9.0)" not in result.output_script
