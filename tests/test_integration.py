"""End-to-end integration tests across all subsystems.

These run the full paper pipeline on small synthetic competitions: build
data + corpus, standardize user scripts under both intent measures,
compare against baselines, and detect injected target leakage.
"""

import numpy as np
import pytest

from repro import (
    LSConfig,
    LucidScript,
    ModelPerformanceIntent,
    TableJaccardIntent,
    detect_target_leakage,
    recommend_parameters,
)
from repro.baselines import SyntaxCleaner
from repro.harness import evaluate_baseline, evaluate_lucidscript
from repro.lang import CorpusVocabulary
from repro.sandbox import check_executes
from repro.workloads import inject_target_leakage

FAST = LSConfig(seq=6, beam_size=2, sample_rows=120)


class TestFullPipelineMedical:
    def test_standardization_improves_over_corpus(self, medical_competition):
        run = evaluate_lucidscript(
            medical_competition, intent_kind="jaccard", config=FAST, max_scripts=6
        )
        stats = run.stats()
        assert stats.minimum >= 0.0
        assert stats.mean > 0.0  # at least some scripts improved

    def test_ls_beats_sourcery(self, medical_competition):
        ls = evaluate_lucidscript(
            medical_competition, intent_kind="jaccard", config=FAST, max_scripts=5
        )
        sourcery = evaluate_baseline(SyntaxCleaner(), medical_competition, max_scripts=5)
        assert ls.stats().mean > sourcery.stats().mean

    def test_outputs_always_execute(self, medical_competition):
        run = evaluate_lucidscript(
            medical_competition, intent_kind="jaccard", config=FAST, max_scripts=4
        )
        for script in run.output_scripts:
            assert check_executes(script, data_dir=medical_competition.data_dir)

    def test_jaccard_deltas_respect_tau(self, medical_competition):
        run = evaluate_lucidscript(
            medical_competition,
            intent_kind="jaccard",
            tau=0.9,
            config=FAST,
            max_scripts=4,
        )
        assert all(delta >= 0.9 for delta in run.intent_deltas)


class TestCrossCorpus:
    def test_titanic_corpus_standardizes_spaceship_style_script(
        self, titanic_competition
    ):
        """The paper's "different corpus" scenario: a foreign corpus still
        helps when schemas overlap (both have Age)."""
        foreign_script = (
            "import pandas as pd\n"
            "df = pd.read_csv('train.csv')\n"
            "df = df[df['Age'] > 5]"
        )
        system = LucidScript(
            titanic_competition.scripts,
            data_dir=titanic_competition.data_dir,
            intent=TableJaccardIntent(tau=0.3),
            config=FAST,
        )
        result = system.standardize(foreign_script)
        assert result.improvement >= 0.0


class TestLeakageEndToEnd:
    def test_detects_injected_leakage_in_competition_script(
        self, medical_competition
    ):
        rng = np.random.default_rng(0)
        detected = 0
        attempts = 0
        for script in medical_competition.scripts[:6]:
            if "'Outcome'" not in script:
                continue
            attempts += 1
            injected, snippets = inject_target_leakage(script, "Outcome", rng)
            system = LucidScript(
                [s for s in medical_competition.scripts if s != script],
                data_dir=medical_competition.data_dir,
                intent=TableJaccardIntent(tau=0.7),
                config=LSConfig(seq=8, beam_size=2, sample_rows=120),
            )
            outcome = detect_target_leakage(system, injected, snippets)
            detected += outcome.detected
        if attempts == 0:
            pytest.skip("no target-referencing scripts in sample")
        assert detected / attempts >= 0.5  # Figure 9: >66% within 8 steps


class TestRecommendedParameters:
    def test_table2_applied_to_built_corpora(self, medical_competition):
        vocab = CorpusVocabulary.from_scripts(medical_competition.scripts)
        stats = vocab.stats()
        config = recommend_parameters(stats.n_scripts, stats.uniq_edges)
        assert config.seq in (8, 16)
        assert config.beam_size in (1, 3)


class TestModelIntentEndToEnd:
    def test_standardize_with_model_intent(self, medical_competition):
        system = LucidScript(
            medical_competition.scripts[1:],
            data_dir=medical_competition.data_dir,
            intent=ModelPerformanceIntent(
                target="Outcome", tau=2.0, task="classification"
            ),
            config=LSConfig(seq=4, beam_size=1, sample_rows=150),
        )
        result = system.standardize(medical_competition.scripts[0])
        assert result.intent_satisfied
        assert result.improvement >= 0.0
