"""Cross-cutting edge cases: multi-file scripts, degenerate corpora,
adversarial candidates."""

import numpy as np
import pytest

import repro.minipandas as mp
from repro.core import LSConfig, LucidScript, StandardizationError, TableJaccardIntent
from repro.lang import CorpusVocabulary, lemmatize, parse_script
from repro.sandbox import run_script


class TestMultiFileScripts:
    @pytest.fixture()
    def two_file_dir(self, tmp_path):
        mp.DataFrame({"id": [1, 2, 3], "x": [1.0, 2.0, 3.0]}).to_csv(
            str(tmp_path / "train.csv")
        )
        mp.DataFrame({"id": [1, 2], "extra": ["a", "b"]}).to_csv(
            str(tmp_path / "meta.csv")
        )
        return str(tmp_path)

    def test_lemmatize_two_files(self):
        script = (
            "import pandas as pd\n"
            "train = pd.read_csv('train.csv')\n"
            "meta = pd.read_csv('meta.csv')\n"
            "train = train.merge(meta, on='id')"
        )
        out = lemmatize(script)
        assert "df = pd.read_csv('train.csv')" in out
        assert "df2 = pd.read_csv('meta.csv')" in out
        assert "df = df.merge(df2, on='id')" in out

    def test_two_file_script_executes(self, two_file_dir):
        script = (
            "import pandas as pd\n"
            "df = pd.read_csv('train.csv')\n"
            "df2 = pd.read_csv('meta.csv')\n"
            "df = df.merge(df2, on='id')"
        )
        result = run_script(script, data_dir=two_file_dir)
        assert result.ok
        assert result.output.shape == (2, 3)

    def test_standardize_two_file_script(self, two_file_dir):
        corpus = [
            "import pandas as pd\n"
            "df = pd.read_csv('train.csv')\n"
            "meta = pd.read_csv('meta.csv')\n"
            "df = df.merge(meta, on='id')\n"
            "df = df.dropna()",
        ] * 2
        system = LucidScript(
            corpus,
            data_dir=two_file_dir,
            intent=TableJaccardIntent(tau=0.5),
            config=LSConfig(seq=4, beam_size=1, sample_rows=100),
        )
        result = system.standardize(
            "import pandas as pd\n"
            "a = pd.read_csv('train.csv')\n"
            "b = pd.read_csv('meta.csv')\n"
            "a = a.merge(b, on='id')"
        )
        assert result.improvement >= 0.0


class TestDegenerateCorpora:
    def test_single_script_corpus(self, diabetes_corpus, diabetes_dir, alex_script):
        system = LucidScript(
            diabetes_corpus[:1],
            data_dir=diabetes_dir,
            intent=TableJaccardIntent(tau=0.5),
            config=LSConfig(seq=4, beam_size=1, sample_rows=100),
        )
        result = system.standardize(alex_script)
        assert result.improvement >= 0.0

    def test_corpus_identical_to_input(self, diabetes_corpus, diabetes_dir):
        system = LucidScript(
            [diabetes_corpus[0]] * 3,
            data_dir=diabetes_dir,
            config=LSConfig(seq=4, beam_size=1, sample_rows=100),
        )
        result = system.standardize(diabetes_corpus[0])
        assert result.re_before == pytest.approx(0.0, abs=1e-9)
        assert result.improvement == pytest.approx(0.0)

    def test_script_of_only_header(self, diabetes_corpus, diabetes_dir):
        system = LucidScript(
            diabetes_corpus,
            data_dir=diabetes_dir,
            intent=TableJaccardIntent(tau=0.9),
            config=LSConfig(seq=4, beam_size=1, sample_rows=100),
        )
        result = system.standardize(
            "import pandas as pd\ndf = pd.read_csv('diabetes.csv')"
        )
        # a bare loader can only gain steps, never lose the protected header
        assert "read_csv" in result.output_script
        assert result.improvement >= 0.0


class TestAdversarialScripts:
    def test_comments_and_blank_lines_tolerated(self, diabetes_corpus, diabetes_dir):
        system = LucidScript(
            diabetes_corpus, data_dir=diabetes_dir,
            config=LSConfig(seq=2, beam_size=1, sample_rows=100),
        )
        messy = (
            "# my prep script\n"
            "import pandas as pd\n\n\n"
            "df = pd.read_csv('diabetes.csv')  # load\n"
            "df = df.fillna(df.mean())\n"
        )
        result = system.standardize(messy)
        assert "#" not in result.output_script

    def test_semicolon_statements_split(self):
        dag = parse_script("import pandas as pd; x = 1; y = 2")
        assert len(dag) == 3

    def test_unicode_identifiers(self):
        dag = parse_script("données = 42\nrésultat = données + 1")
        assert len(dag) == 2

    def test_deeply_nested_expression(self):
        script = "x = " + "(" * 40 + "1" + ")" * 40
        dag = parse_script(script)
        assert dag.statements[0].source == "x = 1"

    def test_very_long_chain(self):
        script = (
            "import pandas as pd\n"
            "df = pd.read_csv('t.csv')\n"
            "df = df" + ".dropna()" * 25
        )
        dag = parse_script(script)
        assert len(dag.statements[2].onegrams) == 25

    def test_no_infinite_loop_on_empty_vocab_overlap(
        self, diabetes_dir, rng
    ):
        """A corpus with zero overlap with the input still terminates."""
        foreign_corpus = [
            "import pandas as pd\n"
            "df = pd.read_csv('other.csv')\n"
            "df = df.sort_values('zzz')",
        ] * 2
        system = LucidScript(
            foreign_corpus,
            data_dir=diabetes_dir,
            config=LSConfig(seq=4, beam_size=1, sample_rows=100),
        )
        result = system.standardize(
            "import pandas as pd\n"
            "df = pd.read_csv('diabetes.csv')\n"
            "df = df.fillna(df.mean())"
        )
        assert result.improvement >= 0.0
