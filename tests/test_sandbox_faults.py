"""Fault-tolerance tests for the sandbox execution-budget layer.

Uses :mod:`repro.sandbox.faults` to plant deterministic pathologies
(hangs, watchdog-defeating hangs, crashes, allocation churn) and checks
that budgets interrupt them, the process pool self-heals around them,
and healthy scripts are never affected.
"""

import sys
import time

import pytest

from repro.sandbox import (
    BatchReport,
    ExecTimeout,
    IncrementalExecutor,
    check_executes_batch,
    kill_worker_pool,
    run_script,
)
from repro.sandbox import runner as runner_module
from repro.sandbox.faults import (
    FAULT_KINDS,
    FaultInjectingExecutor,
    fault_snippet,
    inject_fault,
    spin_snippet,
)

#: Tight budget for scripts that must time out; generous one for scripts
#: that must not.  The hang tests assert wall-clock stays well under the
#: generous bound, so a broken watchdog fails fast instead of wedging CI.
BUDGET_S = 0.2
GENEROUS_S = 30.0

GOOD = "import pandas as pd\ndf = pd.DataFrame({'a': [1, 2]})"
HANG = fault_snippet("hang") + "\ndf = 1"


@pytest.fixture(autouse=True)
def _fresh_pool():
    """Never leak a pool with killed/hung workers into other tests."""
    yield
    kill_worker_pool()


class TestWatchdog:
    def test_hang_is_interrupted_within_budget(self):
        start = time.monotonic()
        result = run_script(HANG, timeout_s=BUDGET_S)
        elapsed = time.monotonic() - start
        assert not result.ok
        assert result.timed_out
        assert result.error_type == "ExecTimeout"
        assert elapsed < GENEROUS_S / 2

    def test_except_exception_cannot_swallow_the_interrupt(self):
        script = (
            "try:\n"
            "    while True:\n"
            "        pass\n"
            "except Exception:\n"
            "    pass\n"
            "df = 1"
        )
        result = run_script(script, timeout_s=BUDGET_S)
        assert result.timed_out

    def test_finite_spin_passes_under_generous_budget(self):
        source = spin_snippet(50_000) + "\n" + GOOD
        result = run_script(source, timeout_s=GENEROUS_S)
        assert result.ok
        assert result.output is not None

    def test_good_script_unchanged_by_budget(self):
        plain = run_script(GOOD)
        budgeted = run_script(GOOD, timeout_s=GENEROUS_S)
        assert plain.ok and budgeted.ok
        assert plain.output["a"].tolist() == budgeted.output["a"].tolist()

    def test_no_budget_installs_no_trace(self):
        prior = sys.gettrace()
        result = run_script(GOOD)
        assert result.ok
        assert sys.gettrace() is prior

    def test_trace_restored_after_timeout(self):
        prior = sys.gettrace()
        run_script(HANG, timeout_s=BUDGET_S)
        assert sys.gettrace() is prior

    def test_crash_fault_is_not_misclassified_as_timeout(self):
        result = run_script(fault_snippet("crash"), timeout_s=GENEROUS_S)
        assert not result.ok
        assert not result.timed_out
        assert result.error_type == "RuntimeError"

    def test_oom_fault_is_interrupted(self):
        result = run_script(fault_snippet("oom"), timeout_s=BUDGET_S)
        assert result.timed_out

    def test_timeout_reports_a_script_line(self):
        result = run_script(HANG, timeout_s=BUDGET_S)
        assert result.error_line is not None
        assert result.error_line >= 1


class TestInjectFault:
    def test_prepends_at_position_zero(self):
        out = inject_fault(GOOD, "crash", position=0)
        assert out.splitlines()[0] == fault_snippet("crash")
        assert out.endswith(GOOD.splitlines()[-1])

    def test_huge_position_appends(self):
        out = inject_fault(GOOD, "crash", position=10**9)
        assert out.startswith(GOOD)
        assert out.splitlines()[-1] == fault_snippet("crash")

    def test_injected_script_still_parses(self):
        import ast

        for kind in FAULT_KINDS:
            for position in (0, 1, 10**9):
                ast.parse(inject_fault(GOOD, kind, position=position))

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            fault_snippet("segfault")
        with pytest.raises(ValueError):
            inject_fault(GOOD, "segfault")

    def test_empty_source_becomes_the_fault(self):
        assert inject_fault("", "crash") == fault_snippet("crash")


class TestBatchBudgets:
    def test_serial_batch_counts_timeouts(self):
        report = BatchReport()
        verdicts = check_executes_batch(
            [GOOD, HANG, GOOD],
            workers=1,
            timeout_s=BUDGET_S,
            report=report,
        )
        assert verdicts == [True, False, True]
        assert report.timeouts == 1
        assert report.respawns == 0
        assert report.degraded == 0

    def test_pool_worker_self_interrupts_without_respawn(self):
        report = BatchReport()
        verdicts = check_executes_batch(
            [GOOD, HANG, GOOD],
            workers=2,
            timeout_s=BUDGET_S,
            report=report,
        )
        assert verdicts == [True, False, True]
        assert report.timeouts == 1
        # the worker interrupted its own script: the pool never hung
        assert report.respawns == 0

    def test_stubborn_hang_forces_kill_and_respawn(self):
        # defeats the in-process watchdog; only the parent's kill works
        stubborn = fault_snippet("stubborn_hang") + "\ndf = 1"
        report = BatchReport()
        start = time.monotonic()
        verdicts = check_executes_batch(
            [GOOD, stubborn, GOOD],
            workers=2,
            timeout_s=BUDGET_S,
            respawn_limit=2,
            report=report,
        )
        elapsed = time.monotonic() - start
        assert verdicts == [True, False, True]
        assert report.timeouts >= 1
        assert report.respawns >= 1
        assert elapsed < GENEROUS_S / 2

    def test_spawn_failure_degrades_to_serial(self, monkeypatch):
        def broken_pool(workers):
            raise RuntimeError("injected fault: pool spawn")

        monkeypatch.setattr(runner_module, "get_worker_pool", broken_pool)
        report = BatchReport()
        verdicts = check_executes_batch(
            [GOOD, GOOD, fault_snippet("crash")],
            workers=2,
            respawn_limit=0,
            report=report,
        )
        assert verdicts == [True, True, False]
        assert report.respawns == 1
        assert report.degraded == 1

    def test_pool_without_budget_unchanged(self):
        report = BatchReport()
        verdicts = check_executes_batch(
            [GOOD, fault_snippet("crash"), GOOD],
            workers=2,
            report=report,
        )
        assert verdicts == [True, False, True]
        assert report.timeouts == 0
        assert report.respawns == 0
        assert report.degraded == 0


class TestIncrementalBudgets:
    def test_script_budget_interrupts_and_counts(self):
        executor = IncrementalExecutor(exec_timeout_s=BUDGET_S)
        result = executor.run_script(HANG)
        assert result.timed_out
        assert executor.stats.timeouts == 1
        assert executor.stats.as_dict()["timeouts"] == 1

    def test_statement_budget_interrupts_the_hanging_statement(self):
        source = GOOD + "\n" + fault_snippet("hang")
        executor = IncrementalExecutor(statement_timeout_s=BUDGET_S)
        result = executor.run_script(source)
        assert result.timed_out
        # the interrupt lands inside the hang loop, after the good prefix
        assert result.error_line >= len(GOOD.splitlines()) + 1

    def test_prefix_snapshot_survives_a_timed_out_suffix(self):
        faulted = GOOD + "\n" + fault_snippet("hang")
        executor = IncrementalExecutor(exec_timeout_s=BUDGET_S)
        assert executor.run_script(faulted).timed_out
        # the shared prefix still executes (and may resume from snapshot)
        result = executor.run_script(GOOD + "\ndf2 = df")
        assert result.ok

    def test_no_budget_means_no_timeout_accounting(self):
        executor = IncrementalExecutor()
        assert executor.exec_timeout_s is None
        assert executor.statement_timeout_s is None
        result = executor.run_script(GOOD)
        assert result.ok
        assert executor.stats.timeouts == 0


class TestFaultInjectingExecutor:
    def test_injects_only_matching_scripts(self):
        executor = FaultInjectingExecutor(
            match="df.dropna", kind="crash", exec_timeout_s=GENEROUS_S
        )
        clean = executor.run_script(GOOD)
        assert clean.ok
        assert executor.injected_sources == []
        target = GOOD + "\ndf = df.dropna()"
        faulted = executor.run_script(target)
        assert not faulted.ok
        assert faulted.error_type == "RuntimeError"
        assert executor.injected_sources == [target]

    def test_predicate_match(self):
        executor = FaultInjectingExecutor(
            match=lambda src: src.count("\n") >= 2, kind="crash"
        )
        assert executor.run_script(GOOD).ok
        assert not executor.run_script(GOOD + "\ndf = df").ok

    def test_injected_hang_is_budgeted(self):
        executor = FaultInjectingExecutor(
            match="dropna", kind="hang", position=10**9, exec_timeout_s=BUDGET_S
        )
        result = executor.run_script(GOOD + "\ndf = df.dropna()")
        assert result.timed_out
        assert executor.stats.timeouts >= 1

    def test_invalid_kind_rejected_eagerly(self):
        with pytest.raises(ValueError):
            FaultInjectingExecutor(match="x", kind="segfault")
